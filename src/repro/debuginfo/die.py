"""Debug Information Entries (DIEs) — the DWARF tree analogue.

The tree mirrors DWARF structure at the granularity the paper reasons
about:

* ``compile_unit`` root;
* ``subprogram`` per emitted function, with ``low_pc``/``high_pc``;
* ``inlined_subroutine`` children with ``ranges`` and an
  ``abstract_origin`` reference to an abstract ``subprogram`` DIE;
* ``lexical_block`` children (scope nesting);
* ``variable`` / ``formal_parameter`` leaves carrying ``name``,
  ``decl_line``, ``scope_start``/``scope_end`` (source lines), an optional
  ``const_value``, and an optional :class:`~repro.debuginfo.location.LocationList`.

The paper's four defect manifestations map directly onto this model:
**Missing DIE** (no variable DIE at all), **Hollow DIE** (DIE without
location or const_value), **Incomplete DIE** (location list not covering
all relevant PCs), **Incorrect DIE** (location/range data that misleads
the consumer).
"""

from __future__ import annotations

import itertools
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .location import LocationList

_die_counter = itertools.count(1)

#: Tags used by the producer.
TAG_COMPILE_UNIT = "compile_unit"
TAG_SUBPROGRAM = "subprogram"
TAG_INLINED_SUBROUTINE = "inlined_subroutine"
TAG_LEXICAL_BLOCK = "lexical_block"
TAG_VARIABLE = "variable"
TAG_FORMAL_PARAMETER = "formal_parameter"

_VARIABLE_TAGS = (TAG_VARIABLE, TAG_FORMAL_PARAMETER)
_SCOPE_TAGS = (TAG_SUBPROGRAM, TAG_INLINED_SUBROUTINE, TAG_LEXICAL_BLOCK)


@dataclass
class DIE:
    """One debug information entry."""

    tag: str
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["DIE"] = field(default_factory=list)
    parent: Optional["DIE"] = None
    die_id: int = field(default_factory=lambda: next(_die_counter))

    # -- construction -------------------------------------------------------

    def add_child(self, child: "DIE") -> "DIE":
        child.parent = self
        self.children.append(child)
        return child

    # -- attribute accessors --------------------------------------------------

    @property
    def name(self) -> Optional[str]:
        return self.attrs.get("name")

    @property
    def location(self) -> Optional[LocationList]:
        return self.attrs.get("location")

    @property
    def const_value(self) -> Optional[int]:
        return self.attrs.get("const_value")

    @property
    def abstract_origin(self) -> Optional["DIE"]:
        return self.attrs.get("abstract_origin")

    @property
    def low_pc(self) -> Optional[int]:
        return self.attrs.get("low_pc")

    @property
    def high_pc(self) -> Optional[int]:
        return self.attrs.get("high_pc")

    @property
    def ranges(self) -> List[tuple]:
        """PC ranges of a scope DIE: explicit ``ranges`` or low/high pc."""
        if "ranges" in self.attrs:
            return list(self.attrs["ranges"])
        if self.low_pc is not None and self.high_pc is not None:
            return [(self.low_pc, self.high_pc)]
        return []

    def pc_in_scope(self, pc: int) -> bool:
        ranges = self.ranges
        if not ranges:
            # Scopes without range info are treated as covering their
            # parent's extent (lexical blocks often omit ranges).
            return True
        return any(lo <= pc < hi for lo, hi in ranges)

    # -- queries ---------------------------------------------------------------

    def is_variable(self) -> bool:
        return self.tag in _VARIABLE_TAGS

    def is_scope(self) -> bool:
        return self.tag in _SCOPE_TAGS

    def walk(self) -> Iterator["DIE"]:
        """Pre-order walk of this DIE and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def variables(self) -> List["DIE"]:
        """Direct variable children of this scope DIE."""
        return [c for c in self.children if c.is_variable()]

    def find_variable(self, name: str) -> Optional["DIE"]:
        for die in self.walk():
            if die.is_variable() and die.name == name:
                return die
        return None

    def dump(self, depth: int = 0) -> str:
        pad = "  " * depth
        attrs = []
        for key, value in self.attrs.items():
            if key == "abstract_origin" and value is not None:
                attrs.append(f"abstract_origin=<die {value.die_id}>")
            else:
                attrs.append(f"{key}={value!r}")
        head = f"{pad}<{self.tag} {' '.join(attrs)}>"
        body = "".join("\n" + c.dump(depth + 1) for c in self.children)
        return head + body

    def __repr__(self) -> str:
        return f"DIE({self.tag}, name={self.name!r})"


class DebugInfoUnit:
    """The compile-unit-level container the debuggers consume.

    Units are write-once: the producer (codegen) builds the tree, then
    consumers query it on every debugger stop.  The read side is served
    by lazily built indexes — a sorted pc-range index for
    :meth:`subprogram_at`, a memoized global-variable list, and a
    ``consumer_cache`` dict the debugger engine uses for its
    per-(scope, quirk) variable lists.  Mutating the tree after a query
    requires :meth:`invalidate_caches` (``add_subprogram`` does it
    automatically).
    """

    def __init__(self, name: str = "unit"):
        self.root = DIE(TAG_COMPILE_UNIT, {"name": name})
        #: abstract subprogram DIEs by function name (inlining origins)
        self.abstract_subprograms: Dict[str, DIE] = {}
        #: consumer-side memo (the debugger engine's scope caches)
        self.consumer_cache: Dict[object, object] = {}
        self._pc_index: Optional[tuple] = None
        self._globals_cache: Optional[List[DIE]] = None

    def invalidate_caches(self) -> None:
        """Drop every lazily built index (call after tree mutation)."""
        self._pc_index = None
        self._globals_cache = None
        self.consumer_cache.clear()

    def add_subprogram(self, die: DIE) -> DIE:
        self.invalidate_caches()
        return self.root.add_child(die)

    def _concrete_subprograms(self) -> List[DIE]:
        return [child for child in self.root.children
                if child.tag == TAG_SUBPROGRAM
                and child.attrs.get("abstract") is not True]

    def _ensure_pc_index(self) -> Optional[tuple]:
        """(starts, ends, dies) of elementary pc segments, first-in-order
        winners precomputed; ``None`` when a rangeless subprogram forces
        the linear path (it covers *every* pc)."""
        index = self._pc_index
        if index is None:
            subs = self._concrete_subprograms()
            if any(not sub.ranges for sub in subs):
                index = self._pc_index = (None,)
            else:
                covering = [(lo, hi, sub) for sub in subs
                            for lo, hi in sub.ranges]
                bounds = sorted({b for lo, hi, _s in covering
                                 for b in (lo, hi)})
                starts: List[int] = []
                ends: List[int] = []
                dies: List[DIE] = []
                for lo, hi in zip(bounds, bounds[1:]):
                    winner = next(
                        (sub for sub in subs
                         if any(rlo <= lo and hi <= rhi
                                for rlo, rhi in sub.ranges)), None)
                    if winner is None:
                        continue
                    if dies and dies[-1] is winner and ends[-1] == lo:
                        ends[-1] = hi
                        continue
                    starts.append(lo)
                    ends.append(hi)
                    dies.append(winner)
                index = self._pc_index = (starts, ends, dies)
        return None if index == (None,) else index

    def subprogram_at(self, pc: int) -> Optional[DIE]:
        """The concrete subprogram DIE whose PC range covers ``pc``."""
        index = self._ensure_pc_index()
        if index is None:  # rangeless subprogram: preserve list order
            for child in self.root.children:
                if child.tag == TAG_SUBPROGRAM and child.pc_in_scope(pc):
                    if child.attrs.get("abstract") is not True:
                        return child
            return None
        starts, ends, dies = index
        i = bisect_right(starts, pc) - 1
        if i >= 0 and pc < ends[i]:
            return dies[i]
        return None

    def global_variable_dies(self) -> List[DIE]:
        """Top-level global variable DIEs (memoized; do not mutate)."""
        if self._globals_cache is None:
            self._globals_cache = [
                child for child in self.root.children
                if child.is_variable() and child.attrs.get("global")]
        return self._globals_cache

    def subprogram_by_name(self, name: str) -> Optional[DIE]:
        for child in self.root.children:
            if child.tag == TAG_SUBPROGRAM and child.name == name and \
                    child.attrs.get("abstract") is not True:
                return child
        return None

    def scope_chain_at(self, pc: int) -> List[DIE]:
        """Innermost-first chain of scope DIEs covering ``pc``."""
        subprogram = self.subprogram_at(pc)
        if subprogram is None:
            return []
        chain: List[DIE] = []

        def descend(scope: DIE) -> None:
            chain.append(scope)
            for child in scope.children:
                if child.is_scope() and child.pc_in_scope(pc) and \
                        child.ranges:
                    descend(child)
                    return

        descend(subprogram)
        chain.reverse()
        return chain

    def dump(self) -> str:
        return self.root.dump()
