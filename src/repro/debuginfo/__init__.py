"""DWARF-analogue debug information model: DIEs, line table, locations,
and the four-way defect taxonomy of Section 5.3."""

from .categories import (
    ALL_CATEGORIES, COMPLETE, HOLLOW, INCOMPLETE, INCORRECT, MISSING,
    classify_variable,
)
from .die import (
    DIE, DebugInfoUnit, TAG_COMPILE_UNIT, TAG_FORMAL_PARAMETER,
    TAG_INLINED_SUBROUTINE, TAG_LEXICAL_BLOCK, TAG_SUBPROGRAM, TAG_VARIABLE,
)
from .linetable import LineEntry, LineTable
from .location import (
    AddrLoc, ConstLoc, ExprLoc, FrameAddrVal, FrameExprLoc, FrameLoc,
    GlobalAddrVal, Loc, LocEntry, LocationList, RegLoc,
)

__all__ = [
    "ALL_CATEGORIES", "AddrLoc", "COMPLETE", "ConstLoc", "DIE",
    "DebugInfoUnit", "ExprLoc", "FrameAddrVal", "FrameExprLoc", "FrameLoc",
    "GlobalAddrVal", "HOLLOW", "INCOMPLETE", "INCORRECT", "LineEntry",
    "LineTable", "Loc", "LocEntry", "LocationList", "MISSING", "RegLoc",
    "TAG_COMPILE_UNIT", "TAG_FORMAL_PARAMETER", "TAG_INLINED_SUBROUTINE",
    "TAG_LEXICAL_BLOCK", "TAG_SUBPROGRAM", "TAG_VARIABLE",
    "classify_variable",
]
