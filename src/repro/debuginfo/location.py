"""Location descriptions and location lists (the DWARF ``DW_AT_location``
analogue).

A variable's value at a given PC is described by a :class:`Loc`:

* :class:`RegLoc` — lives in a physical register (``DW_OP_regN``);
* :class:`FrameLoc` — stored at frame pointer + offset (``DW_OP_fbreg``);
* :class:`AddrLoc` — stored at an absolute address (``DW_OP_addr``,
  used for statics);
* :class:`ConstLoc` — the value itself is known (``DW_OP_consts`` /
  location-list form of ``DW_AT_const_value``);
* :class:`FrameAddrVal` / :class:`GlobalAddrVal` — the *value* is an
  address (a pointer to a stack slot or global);
* :class:`ExprLoc` — the value is an affine function of a register, the
  miniature form of a salvaged DWARF expression
  (``DW_OP_bregN; DW_OP_lit*; DW_OP_mul; DW_OP_plus; DW_OP_div``).

A :class:`LocationList` maps half-open PC ranges ``[lo, hi)`` to locations.
Buggy producers can and do emit overlapping, empty, or gappy lists — the
consumers (our gdb-like and lldb-like debuggers) each cope in their own,
not always correct, way, exactly as the paper found.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Loc:
    """Base class for location descriptions."""


@dataclass(frozen=True)
class RegLoc(Loc):
    """Value lives in physical register ``reg``."""

    reg: int = 0

    def __repr__(self):
        return f"reg{self.reg}"


@dataclass(frozen=True)
class FrameLoc(Loc):
    """Value stored in the frame at ``fp + offset``."""

    offset: int = 0

    def __repr__(self):
        return f"[fp+{self.offset}]"


@dataclass(frozen=True)
class AddrLoc(Loc):
    """Value stored at absolute address ``addr``."""

    addr: int = 0

    def __repr__(self):
        return f"[{self.addr:#x}]"


@dataclass(frozen=True)
class ConstLoc(Loc):
    """The value is the constant itself."""

    value: int = 0

    def __repr__(self):
        return f"const {self.value}"


@dataclass(frozen=True)
class FrameAddrVal(Loc):
    """The value *is* the address ``fp + offset`` (pointer to a local)."""

    offset: int = 0

    def __repr__(self):
        return f"=fp+{self.offset}"


@dataclass(frozen=True)
class GlobalAddrVal(Loc):
    """The value *is* the absolute address ``addr`` (pointer to a global)."""

    addr: int = 0

    def __repr__(self):
        return f"={self.addr:#x}"


@dataclass(frozen=True)
class ExprLoc(Loc):
    """Value = ``(register * mul + add) // div`` — a salvaged expression."""

    reg: int = 0
    mul: int = 1
    add: int = 0
    div: int = 1

    def evaluate(self, reg_value: int) -> int:
        value = reg_value * self.mul + self.add
        q = abs(value) // abs(self.div)
        if (value < 0) != (self.div < 0):
            q = -q
        return q

    def __repr__(self):
        return f"expr(reg{self.reg}*{self.mul}+{self.add})/{self.div}"


@dataclass(frozen=True)
class FrameExprLoc(Loc):
    """Value = ``(*(fp + offset) * mul + add) // div`` — a salvaged
    expression over a spilled base (``DW_OP_fbreg``-rooted)."""

    offset: int = 0
    mul: int = 1
    add: int = 0
    div: int = 1

    def evaluate(self, base_value: int) -> int:
        value = base_value * self.mul + self.add
        q = abs(value) // abs(self.div)
        if (value < 0) != (self.div < 0):
            q = -q
        return q

    def __repr__(self):
        return (f"expr([fp+{self.offset}]*{self.mul}+{self.add})"
                f"/{self.div}")


@dataclass(frozen=True)
class LocEntry:
    """One location-list entry covering ``[lo, hi)``."""

    lo: int
    hi: int
    loc: Loc

    @property
    def empty(self) -> bool:
        return self.hi <= self.lo

    def covers(self, pc: int) -> bool:
        return self.lo <= pc < self.hi

    def __repr__(self):
        return f"[{self.lo:#x},{self.hi:#x}) {self.loc!r}"


class _RangeIndex:
    """A sorted, first-entry-wins interval index over loc entries.

    Buggy producers emit overlapping and unordered entries, and DWARF
    consumers take the *first* entry (in list order) covering the pc.
    The index splits the address space at every entry boundary; within
    one elementary segment the winning entry cannot change, so it is
    resolved once at build time and lookups become a single ``bisect``
    instead of a linear scan per debugger stop.
    """

    __slots__ = ("starts", "ends", "locs")

    def __init__(self, entries: List[LocEntry]):
        live = [e for e in entries if not e.empty]
        bounds = sorted({e.lo for e in live} | {e.hi for e in live})
        self.starts: List[int] = []
        self.ends: List[int] = []
        self.locs: List[Loc] = []
        for lo, hi in zip(bounds, bounds[1:]):
            # Segments never straddle an entry boundary, so covering the
            # segment start means covering the whole segment.
            winner = next(
                (e.loc for e in live if e.lo <= lo and hi <= e.hi), None)
            if winner is None:
                continue
            if self.locs and self.locs[-1] is winner and \
                    self.ends[-1] == lo:
                self.ends[-1] = hi
                continue
            self.starts.append(lo)
            self.ends.append(hi)
            self.locs.append(winner)

    def lookup(self, pc: int) -> Optional[Loc]:
        i = bisect_right(self.starts, pc) - 1
        if i >= 0 and pc < self.ends[i]:
            return self.locs[i]
        return None


@dataclass
class LocationList:
    """An ordered list of location entries for one variable."""

    entries: List[LocEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._index: Optional[_RangeIndex] = None
        self._prefix_index: Optional[_RangeIndex] = None

    def add(self, lo: int, hi: int, loc: Loc) -> None:
        self.entries.append(LocEntry(lo, hi, loc))
        self._index = self._prefix_index = None

    def lookup(self, pc: int) -> Optional[Loc]:
        """First entry covering ``pc`` (DWARF consumers use the first).

        Served from a lazily built bisect index; the linear reference
        (:meth:`lookup_linear`) is kept for the differential tests.
        """
        index = self._index
        if index is None:
            index = self._index = _RangeIndex(self.entries)
        return index.lookup(pc)

    def lookup_before_empty(self, pc: int) -> Optional[Loc]:
        """Like :meth:`lookup`, but scanning stops at the first empty
        (``lo == hi``) entry — gdb bug 28987's consumption behaviour.
        Indexed over the prefix before the first empty entry."""
        index = self._prefix_index
        if index is None:
            prefix: List[LocEntry] = []
            for entry in self.entries:
                if entry.empty:
                    break
                prefix.append(entry)
            index = self._prefix_index = _RangeIndex(prefix)
        return index.lookup(pc)

    def lookup_linear(self, pc: int) -> Optional[Loc]:
        """The pre-index linear scan, kept as the executable
        specification for ``tests/test_matrix_fastpaths.py``."""
        for entry in self.entries:
            if entry.covers(pc):
                return entry.loc
        return None

    def covers(self, pc: int) -> bool:
        return self.lookup(pc) is not None

    def covered_ranges(self) -> List[Tuple[int, int]]:
        """All non-empty (lo, hi) ranges, in list order."""
        return [(e.lo, e.hi) for e in self.entries if not e.empty]

    def has_empty_entries(self) -> bool:
        return any(e.empty for e in self.entries)

    def is_empty(self) -> bool:
        return not any(not e.empty for e in self.entries)

    def normalized(self) -> "LocationList":
        """Drop empty entries and merge adjacent entries with equal
        locations. Producers normally emit normalized lists; *not*
        normalizing is one of the defect knobs."""
        entries = sorted((e for e in self.entries if not e.empty),
                         key=lambda e: (e.lo, e.hi))
        merged: List[LocEntry] = []
        for entry in entries:
            if merged and merged[-1].loc == entry.loc and \
                    merged[-1].hi >= entry.lo:
                prev = merged.pop()
                entry = LocEntry(prev.lo, max(prev.hi, entry.hi), entry.loc)
            merged.append(entry)
        return LocationList(merged)

    def truncated(self, hi_limit: int) -> "LocationList":
        """A copy with every entry clipped to end at ``hi_limit``."""
        out = LocationList()
        for entry in self.entries:
            out.add(entry.lo, min(entry.hi, hi_limit), entry.loc)
        return out

    def __iter__(self):
        return iter(self.entries)

    def __len__(self):
        return len(self.entries)

    def __repr__(self):
        return "LocationList(" + ", ".join(map(repr, self.entries)) + ")"
