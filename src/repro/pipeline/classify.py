"""Violation classification: cross-debugger validation and DWARF analysis.

Implements the two validation steps of Sections 4.2 and 5.3:

* **cross-debugger check** — a violation that disappears when the trace is
  taken with the *other* family's debugger points at a consumer (debugger)
  bug rather than a producer (compiler) bug;
* **DWARF-level categorization** — inspecting the variable's DIE at the
  violating line yields the paper's four-way taxonomy: Missing / Hollow /
  Incomplete / Incorrect DIE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.source_facts import SourceFacts
from ..compilers.compiler import Compilation, Compiler
from ..conjectures.base import Violation, check_all
from ..debuginfo.categories import (
    COMPLETE, HOLLOW, INCOMPLETE, INCORRECT, MISSING, classify_variable,
)
from ..debugger.base import Debugger
from ..debugger.gdb_like import GdbLike
from ..debugger.lldb_like import LldbLike
from ..lang.ast_nodes import Program


def dwarf_category(compilation: Compilation,
                   violation: Violation) -> str:
    """Classify the variable's DWARF data at the violating line."""
    exe = compilation.exe
    addrs = exe.line_table.breakpoint_addrs().get(violation.line, [])
    if not addrs:
        return MISSING
    pc = addrs[0]
    chain = exe.debug.scope_chain_at(pc)
    die = None
    for scope in chain:
        for child in scope.walk():
            if child.is_variable() and child.name == violation.variable:
                die = child
                break
        if die is not None:
            break
    return classify_variable(die, addrs)


@dataclass
class ClassifiedViolation:
    """A violation with its validation verdicts attached."""

    violation: Violation
    #: "compiler" or "debugger" (Section 4.2 cross-check)
    suspected_system: str
    #: Missing / Hollow / Incomplete / Incorrect / Complete
    category: str


def classify_violation(program: Program, compiler: Compiler, level: str,
                       violation: Violation,
                       facts: Optional[SourceFacts] = None
                       ) -> ClassifiedViolation:
    """Full validation of one violation.

    Repeats the test in the non-native debugger: if the other debugger
    shows the variable fine *and* the DWARF data is complete, the native
    debugger mishandled valid data — a debugger bug. A violation whose
    DWARF data is itself deficient is a compiler bug regardless of which
    debuggers stumble.
    """
    if facts is None:
        facts = SourceFacts(program)
    compilation = compiler.compile(program, level)
    category = dwarf_category(compilation, violation)

    other: Debugger = (LldbLike() if compiler.family == "gcc"
                       else GdbLike())
    other_trace = other.trace(compilation.exe)
    in_other = any(v.key() == violation.key()
                   for v in check_all(facts, other_trace))

    if not in_other and category in (COMPLETE, INCORRECT):
        suspected = "debugger"
    else:
        suspected = "compiler"
    return ClassifiedViolation(violation=violation,
                               suspected_system=suspected,
                               category=category)
