"""``repro-campaign`` — run a testing campaign from the command line.

Runs the Section 5.1 campaign (serial or sharded across worker
processes), writes the result as a JSON artifact, and prints the Table 1
and Venn-region summaries::

    repro-campaign --family gcc --pool-size 100 --workers 4 \
        --output campaign-gcc.json

Artifacts are plain :meth:`CampaignResult.to_json` documents
(``repro-campaign/1`` schema, specified in ``docs/ARTIFACTS.md``);
reload them with ``CampaignResult.from_json(path.read_text())`` to
compare campaigns across runs or machines, render them later with
``repro-report``, or pass ``--report DIR`` to materialize the
Markdown/HTML/CSV paper deliverables (plus a ``repro-report/1``
manifest) in the same run.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from ..compilers.compiler import CompilerSpec
from ..debugger import NATIVE_DEBUGGERS
from ..debugger.specs import DEBUGGER_REGISTRY, DebuggerSpec
from .campaign import run_campaign
from .matrix import run_matrix_campaign
from .parallel import (
    default_workers, run_campaign_parallel, run_matrix_campaign_parallel,
)


def _parse_families(text: str):
    families = []
    for part in text.split(","):
        family = part.strip()
        if not family:
            continue
        if family not in ("gcc", "clang"):
            raise argparse.ArgumentTypeError(
                f"unknown compiler family {family!r}")
        if family not in families:  # "gcc,gcc" would double-count cells
            families.append(family)
    if not families:
        raise argparse.ArgumentTypeError("no families given")
    return tuple(families)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Run a conjecture-violation campaign (Table 1 / "
                    "Figures 2-4) and write a JSON artifact.")
    parser.add_argument("--family", choices=("gcc", "clang"),
                        default="gcc", help="compiler family")
    parser.add_argument("--families", type=_parse_families,
                        metavar="FAM[,FAM]",
                        help="run the compile-once evaluation matrix "
                             "over these families (e.g. gcc,clang) x "
                             "every level x both debuggers; overrides "
                             "--family/--debugger")
    parser.add_argument("--version", default="trunk",
                        help="compiler version (default: trunk)")
    parser.add_argument("--debugger", default="auto",
                        choices=("auto",) + tuple(sorted(DEBUGGER_REGISTRY)),
                        help="debugger; 'auto' picks the family's native "
                             "one (gdb-like for gcc, lldb-like for clang)")
    parser.add_argument("--pool-size", type=int, default=100,
                        help="number of generated programs")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first seed of the campaign range")
    parser.add_argument("--levels", nargs="+", metavar="LEVEL",
                        help="optimization levels (default: every "
                             "optimized level of the family)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: CPU count; "
                             "1 = in-process)")
    parser.add_argument("--serial", action="store_true",
                        help="force the serial driver (ignores --workers)")
    parser.add_argument("--start-method", default="spawn",
                        choices=("spawn", "fork", "forkserver"),
                        help="multiprocessing start method")
    parser.add_argument("--output", metavar="PATH",
                        help="write the campaign artifact JSON here")
    add_common_driver_args(parser)
    parser.add_argument("--indent", type=int, default=2,
                        help="artifact JSON indentation (default: 2)")
    parser.add_argument("--report", metavar="DIR",
                        help="render the paper deliverables (Table 1/4, "
                             "Venn, Figure 4) plus a manifest.json into "
                             "this directory")
    parser.add_argument("--report-formats", type=_parse_formats_csv,
                        default=None, metavar="FMT[,FMT]",
                        help="formats for --report "
                             "(default: md,html,csv)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary tables")
    return parser


def add_common_driver_args(parser: argparse.ArgumentParser,
                           unit: str = "seed",
                           sharded: bool = True) -> None:
    """The ``--store``/``--faults``/``--max-attempts`` /
    ``--no-retry-failed`` group every campaign driver CLI shares
    (campaign, verify, reduce, bisect).  ``unit`` is the driver's unit
    of resume and containment ("seed" or "witness"); ``sharded``
    drivers also spend the attempt budget on crashed-shard respawns.
    """
    parser.add_argument("--store", metavar="PATH",
                        help=f"persistent campaign store (repro-db/1 "
                             f"sqlite file): finished {unit}s are "
                             f"written through and replayed on the "
                             f"next run, so an interrupted or extended "
                             f"run only pays for the delta")
    parser.add_argument("--faults", metavar="PLAN.json",
                        help="inject faults from a repro-faults/1 plan "
                             "(deterministic chaos testing: the run "
                             "completes and records every injected "
                             "failure)")
    budget = f"containment retry budget per {unit}"
    if sharded:
        budget += " and respawn budget per crashed shard"
    parser.add_argument("--max-attempts", type=int, default=None,
                        metavar="N", help=f"{budget} (default: 3)")
    parser.add_argument("--no-retry-failed", action="store_true",
                        help=f"with --store, carry quarantined failure "
                             f"records forward instead of retrying the "
                             f"failed {unit}s")


def _parse_formats_csv(text: str):
    from ..report.cli import _parse_formats
    return _parse_formats(text)


def _open_cli_store(path: Optional[str]):
    """Open the ``--store`` file for a serial run (``None`` stays
    ``None``); the parallel drivers take the path itself and open one
    connection per worker instead."""
    if path is None:
        return None
    from ..store import CampaignStore
    return CampaignStore(path)


def _fault_options(parser: argparse.ArgumentParser, args) -> dict:
    """The containment kwargs shared by every campaign CLI
    (``--faults/--max-attempts/--no-retry-failed``)."""
    from ..faults import DEFAULT_MAX_ATTEMPTS, FaultPlan
    plan = None
    if args.faults:
        try:
            plan = FaultPlan.load(args.faults)
        except (OSError, ValueError) as error:
            parser.error(f"--faults: {error}")
    if args.max_attempts is not None and args.max_attempts < 1:
        parser.error(
            f"--max-attempts must be >= 1, got {args.max_attempts}")
    return {
        "faults": plan,
        "max_attempts": (args.max_attempts if args.max_attempts
                         is not None else DEFAULT_MAX_ATTEMPTS),
        "retry_failed": not args.no_retry_failed,
    }


def _print_failures(result, quiet: bool) -> None:
    """One warning line when a run degraded gracefully."""
    failures = result.failures
    if failures and not quiet:
        quarantined = sum(1 for record in failures
                          if record.status == "quarantined")
        print(f"failures: {len(failures)} recorded "
              f"({quarantined} quarantined) — render with "
              f"'repro-report failures'")


def _write_report(result, args) -> None:
    """Materialize the deliverables of a finished run (--report DIR)."""
    from ..report.manifest import render_all
    from ..report.renderers import DEFAULT_FORMATS
    render_all([result], args.report,
               formats=args.report_formats or DEFAULT_FORMATS)
    if not args.quiet:
        print(f"report written to {args.report}/manifest.json")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point with graceful-shutdown parity: SIGTERM (like
    Ctrl-C) checkpoints finished work to the ``--store`` file on the
    way out and exits 130."""
    from ..faults import run_interruptible
    return run_interruptible(_main, argv)


def _main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.families:
        return _run_matrix(parser, args)
    compiler = CompilerSpec(family=args.family, version=args.version)
    debugger_name = args.debugger
    if debugger_name == "auto":
        debugger_name = NATIVE_DEBUGGERS[args.family].name
    debugger = DebuggerSpec(name=debugger_name)

    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    workers = 1 if args.serial else (
        args.workers if args.workers is not None else default_workers())
    fault_options = _fault_options(parser, args)
    started = time.perf_counter()
    if args.serial:
        store = _open_cli_store(args.store)
        try:
            result = run_campaign(
                compiler.build(), debugger.build(),
                pool_size=args.pool_size, seed_base=args.seed_base,
                levels=args.levels, store=store, **fault_options)
        finally:
            if store is not None:
                store.close()
    else:
        result = run_campaign_parallel(
            compiler, debugger, pool_size=args.pool_size,
            seed_base=args.seed_base, levels=args.levels,
            workers=workers, start_method=args.start_method,
            store_path=args.store, **fault_options)
    elapsed = time.perf_counter() - started

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.to_json(indent=args.indent))
            handle.write("\n")

    if not args.quiet:
        from ..report import format_table1_text, format_venn_text
        mode = "serial" if args.serial or workers <= 1 else \
            f"{workers} workers"
        rate = result.pool_size / elapsed if elapsed > 0 else 0.0
        print(f"campaign: {result.family}-{result.version}, "
              f"{result.pool_size} programs, levels "
              f"{'/'.join(result.levels)}, {debugger_name} ({mode})")
        print(f"elapsed: {elapsed:.2f}s ({rate:.2f} programs/sec)")
        print()
        print("Table 1 — violations per optimization level")
        print(format_table1_text(result))
        print()
        print("Venn regions — unique violations per exact level set")
        print(format_venn_text(result))
        if args.output:
            print()
            print(f"artifact written to {args.output}")
    _print_failures(result, args.quiet)
    if args.report:
        _write_report(result, args)
    return 0


def _run_matrix(parser: argparse.ArgumentParser, args) -> int:
    """The compile-once matrix path (``--families gcc,clang``)."""
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    workers = 1 if args.serial else (
        args.workers if args.workers is not None else default_workers())
    fault_options = _fault_options(parser, args)
    started = time.perf_counter()
    if args.serial or workers <= 1:
        store = _open_cli_store(args.store)
        try:
            result = run_matrix_campaign(
                families=args.families, version=args.version,
                pool_size=args.pool_size, seed_base=args.seed_base,
                levels=args.levels, store=store, **fault_options)
        finally:
            if store is not None:
                store.close()
    else:
        result = run_matrix_campaign_parallel(
            families=args.families, version=args.version,
            pool_size=args.pool_size, seed_base=args.seed_base,
            levels=args.levels, workers=workers,
            start_method=args.start_method, store_path=args.store,
            **fault_options)
    elapsed = time.perf_counter() - started

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.to_json(indent=args.indent))
            handle.write("\n")

    if not args.quiet:
        mode = "serial" if args.serial or workers <= 1 else \
            f"{workers} workers"
        rate = result.pool_size / elapsed if elapsed > 0 else 0.0
        cells = len(result.cells)
        print(f"matrix campaign: {'/'.join(args.families)}-"
              f"{args.version}, {result.pool_size} programs, "
              f"{cells} cells ({mode})")
        print(f"elapsed: {elapsed:.2f}s ({rate:.2f} programs/sec)")
        print()
        print(result.format_summary())
        if args.output:
            print()
            print(f"artifact written to {args.output}")
    _print_failures(result, args.quiet)
    if args.report:
        _write_report(result, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
