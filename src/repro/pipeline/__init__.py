"""End-to-end campaigns, classification, reduction, and reporting."""

from .campaign import (
    CAMPAIGN_SCHEMA, CampaignResult, ProgramResult, ViolationKey,
    fold_results, merge_results, run_campaign, run_campaign_on_programs,
    run_campaign_seeds, test_program, test_program_full,
)
from .classify import ClassifiedViolation, classify_violation, dwarf_category
from .matrix import (
    MATRIX_SCHEMA, MatrixCampaignResult, merge_matrix_results,
    run_matrix_campaign, run_matrix_campaign_seeds, run_matrix_study,
)
from .parallel import (
    CampaignShard, MatrixShard, RetryPolicy, StudyShard,
    run_campaign_parallel, run_campaign_shard,
    run_matrix_campaign_parallel, run_matrix_shard, run_study_parallel,
    run_study_shard,
)
from .reduction import (
    REDUCE_SCHEMA, ReductionCampaignResult, ReductionRecord,
    iter_witnesses, merge_reduction_results, run_reduction_campaign,
)
