"""End-to-end campaigns, classification, and reporting."""

from .campaign import (
    CampaignResult, ProgramResult, ViolationKey, run_campaign,
    run_campaign_on_programs, test_program,
)
from .classify import ClassifiedViolation, classify_violation, dwarf_category
