"""Campaign-scale reduction: shrink every violation of a stored campaign.

The paper's reporting workflow ends with a minimized reproducer per
bug report; :func:`run_reduction_campaign` industrializes that step: it
takes a stored ``repro-campaign/1`` artifact (or a live
:class:`~repro.pipeline.campaign.CampaignResult`), regenerates each
violating program from its seed, optionally triages the culprit
optimization, runs the fast reduction engine on every distinct
``(conjecture, variable)`` witness, and collects the outcomes in a
:class:`ReductionCampaignResult` — the ``repro-reduce/1`` artifact,
renderable by ``repro-report`` and the ``repro-reduce`` console script
(:mod:`repro.reduce.cli`).

Witness selection (:func:`iter_witnesses`) is deterministic: programs
in seed order; within a program the campaign's level order; within a
level the checker's violation order; one witness per distinct
``(conjecture, variable)`` — the reduction oracle's violation identity,
since line numbers shift while shrinking.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..compilers.compiler import Compiler
from ..conjectures.base import Violation
from ..debugger import NATIVE_DEBUGGERS
from ..debugger.base import Debugger
from ..faults.boundary import DEFAULT_MAX_ATTEMPTS, FailureBoundary
from ..faults.plan import FaultPlan
from ..faults.records import (
    FailureRecord, failures_from_dicts, failures_to_dicts,
    merge_failures,
)
from ..fuzz.generator import generate_validated
from ..reduce import Reducer, ReductionResult, ReferenceReducer
from ..triage.triage import triage
from .campaign import (
    CampaignResult, fold_results, missing_field_error, persist_failure,
    stored_failure,
)

#: Artifact schema tag; bump only with a migration path in ``from_dict``.
REDUCE_SCHEMA = "repro-reduce/1"

#: Reduction engines ``run_reduction_campaign`` can drive.
ENGINES = ("fast", "parallel", "reference")


@dataclass
class ReductionRecord:
    """One reduced witness."""

    seed: int
    level: str
    conjecture: str
    variable: str
    function: str
    line: int
    culprit: Optional[str]
    method: str                    # "flags" | "bisect" | "none"
    original_size: int
    reduced_size: int
    steps_tried: int
    steps_accepted: int
    reduced_source: str

    @property
    def reduction_ratio(self) -> float:
        if self.original_size == 0:
            return 0.0
        return 1.0 - self.reduced_size / self.original_size

    def witness_key(self) -> Tuple[int, str, str, str]:
        """The violation identity reduction preserves — what the store
        keys witnesses by, and what shard merges must keep disjoint."""
        return (self.seed, self.level, self.conjecture, self.variable)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "level": self.level,
            "conjecture": self.conjecture,
            "variable": self.variable,
            "function": self.function,
            "line": self.line,
            "culprit": self.culprit,
            "method": self.method,
            "original_size": self.original_size,
            "reduced_size": self.reduced_size,
            "steps_tried": self.steps_tried,
            "steps_accepted": self.steps_accepted,
            "reduced_source": self.reduced_source,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ReductionRecord":
        try:
            return cls(**{name: data[name] for name in (
                "seed", "level", "conjecture", "variable", "function",
                "line", "culprit", "method", "original_size",
                "reduced_size", "steps_tried", "steps_accepted",
                "reduced_source")})
        except KeyError as error:
            raise missing_field_error(REDUCE_SCHEMA, error) from None


@dataclass
class ReductionCampaignResult:
    """Every reduced witness of one campaign (``repro-reduce/1``)."""

    family: str
    version: str
    debugger: str
    engine: str = "fast"
    pool_size: int = 0
    records: List[ReductionRecord] = field(default_factory=list)
    #: aggregate oracle accounting (summed over witnesses)
    stats: Dict[str, int] = field(default_factory=dict)
    #: Contained per-witness failures (see repro.faults); omitted from
    #: the serialized artifact when empty for byte-compatibility.
    failures: List[FailureRecord] = field(default_factory=list)

    @property
    def witnesses(self) -> int:
        return len(self.records)

    def total(self, attr: str) -> int:
        return sum(getattr(record, attr) for record in self.records)

    # -- merging -----------------------------------------------------------------

    def merge(self, other: "ReductionCampaignResult"
              ) -> "ReductionCampaignResult":
        """Combine two shard results (disjoint witness sets required).

        Identity is the full reduction cell — compiler, debugger *and*
        engine — since records from different engines are not
        comparable.  Records renormalize to seed order (stable, so a
        program's per-level witness order is preserved) and the oracle
        accounting is summed key-wise.
        """
        mine = (self.family, self.version, self.debugger, self.engine)
        theirs = (other.family, other.version, other.debugger,
                  other.engine)
        if mine != theirs:
            raise ValueError(
                f"cannot merge reduction campaigns of different cells: "
                f"{'/'.join(mine)} vs {'/'.join(theirs)}")
        overlap = {record.witness_key() for record in self.records} & \
            {record.witness_key() for record in other.records}
        if overlap:
            raise ValueError(
                f"cannot merge reduction campaigns with overlapping "
                f"witnesses (would double-count): "
                f"{sorted(overlap)[:3]}...")
        stats = dict(self.stats)
        for key, value in other.stats.items():
            stats[key] = stats.get(key, 0) + value
        records = sorted(self.records + other.records,
                         key=lambda record: record.seed)
        return ReductionCampaignResult(
            family=self.family, version=self.version,
            debugger=self.debugger, engine=self.engine,
            pool_size=self.pool_size + other.pool_size,
            records=records, stats=stats,
            failures=merge_failures(self.failures, other.failures))

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "schema": REDUCE_SCHEMA,
            "family": self.family,
            "version": self.version,
            "debugger": self.debugger,
            "engine": self.engine,
            "pool_size": self.pool_size,
            "records": [record.to_dict() for record in self.records],
            "stats": dict(sorted(self.stats.items())),
        }
        if self.failures:
            data["failures"] = failures_to_dicts(self.failures)
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        """The ``repro-reduce/1`` artifact document (field-by-field
        spec in ``docs/ARTIFACTS.md``); render it with ``repro-report``
        or :func:`repro.report.reduce_table`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]
                  ) -> "ReductionCampaignResult":
        schema = data.get("schema")
        if schema != REDUCE_SCHEMA:
            raise ValueError(
                f"not a reduction artifact: schema {schema!r} "
                f"(expected {REDUCE_SCHEMA!r})")
        try:
            return cls(
                family=data["family"], version=data["version"],
                debugger=data["debugger"], engine=data["engine"],
                pool_size=data["pool_size"],
                records=[ReductionRecord.from_dict(r)
                         for r in data["records"]],
                stats=dict(data["stats"]),
                failures=failures_from_dicts(data.get("failures", ())))
        except KeyError as error:
            raise missing_field_error(REDUCE_SCHEMA, error) from None

    @classmethod
    def from_json(cls, text: str) -> "ReductionCampaignResult":
        """Load a stored ``repro-reduce/1`` artifact (see
        ``docs/ARTIFACTS.md``)."""
        return cls.from_dict(json.loads(text))


def merge_reduction_results(results: Iterable[ReductionCampaignResult]
                            ) -> ReductionCampaignResult:
    """Fold any number of shard results into one (at least one needed;
    a single shard is returned unchanged — see
    :func:`~repro.pipeline.campaign.fold_results`)."""
    return fold_results(results, what="reduction results")


def iter_witnesses(campaign: CampaignResult
                   ) -> Iterator[Tuple[int, str, Violation]]:
    """Deterministic ``(seed, level, violation)`` witnesses: one per
    distinct ``(conjecture, variable)`` per program, at the first level
    (campaign order) the pair appears."""
    for program_result in campaign.programs:
        seen = set()
        for level in campaign.levels:
            for violation in program_result.violations.get(level, ()):
                identity = (violation.conjecture, violation.variable)
                if identity in seen:
                    continue
                seen.add(identity)
                yield program_result.seed, level, violation


def run_reduction_campaign(campaign: CampaignResult,
                           engine: str = "fast",
                           debugger: Optional[Debugger] = None,
                           max_steps: int = 2000,
                           with_triage: bool = True,
                           workers: Optional[int] = None,
                           limit: Optional[int] = None,
                           store=None,
                           faults: Optional[FaultPlan] = None,
                           max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                           retry_failed: bool = True
                           ) -> ReductionCampaignResult:
    """Reduce every witness of ``campaign`` and aggregate the outcomes.

    ``engine`` selects ``fast`` (serial engine), ``parallel``
    (speculative workers — ``workers`` defaults to the CPU count), or
    ``reference`` (the seed-faithful baseline; for differential runs).
    ``with_triage=False`` skips culprit identification (reductions then
    preserve only the violation, not the responsible optimization).
    ``limit`` bounds how many witnesses are reduced.

    The campaign must have been produced over generator seeds (as
    ``run_campaign``/``repro-campaign`` do) — programs are regenerated
    with :func:`~repro.fuzz.generator.generate_validated`.

    With a :class:`~repro.store.CampaignStore`, every finished witness
    (triage + reduction, with its share of the oracle accounting) is
    written through and replayed on the next run, so an interrupted
    reduction campaign resumes at the first unreduced witness.

    Each witness is fault-contained independently (failure records
    carry the witness as ``item``, so one pathological witness never
    takes down the rest of its seed); ``KeyboardInterrupt`` flushes
    the store before propagating.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown reduction engine {engine!r}; "
                         f"known: {', '.join(ENGINES)}")
    compiler = Compiler(campaign.family, campaign.version)
    if debugger is None:
        debugger = NATIVE_DEBUGGERS[campaign.family]()
    result = ReductionCampaignResult(
        family=campaign.family, version=campaign.version,
        debugger=debugger.name, engine=engine,
        pool_size=campaign.pool_size)
    run = None
    if store is not None:
        run = store.run_id(
            REDUCE_SCHEMA, campaign.family, campaign.version, (),
            debugger=debugger.name, engine=engine,
            attrs={"pool_size": campaign.pool_size})
    cell = f"{campaign.family}-{campaign.version}/{debugger.name}"
    boundary = FailureBoundary(cell, faults=faults,
                               max_attempts=max_attempts)
    totals: Dict[str, int] = {}
    try:
        for count, (seed, level, violation) in enumerate(
                iter_witnesses(campaign)):
            if limit is not None and count >= limit:
                break
            item = f"{level}/{violation.conjecture}/{violation.variable}"
            if run is not None:
                stored = store.get_reduction(
                    run, seed, level, violation.conjecture,
                    violation.variable)
                if stored is not None:
                    for key, value in stored.pop("stats", {}).items():
                        totals[key] = totals.get(key, 0) + value
                    result.records.append(
                        ReductionRecord.from_dict(stored))
                    continue
                if not retry_failed:
                    prior = stored_failure(store, run, seed, item)
                    if prior is not None:
                        result.failures.append(prior)
                        continue

            def compute(probe, seed=seed, level=level,
                        violation=violation):
                probe("generate")
                program = generate_validated(seed)
                probe("reduce")
                culprit = None
                method = "none"
                if with_triage:
                    triaged = triage(compiler, program, level, debugger,
                                     violation)
                    culprit = triaged.culprit
                    method = triaged.method
                reduction = _reduce_one(
                    compiler, level, debugger, violation, culprit,
                    engine, max_steps, workers, program)
                record = ReductionRecord(
                    seed=seed, level=level,
                    conjecture=violation.conjecture,
                    variable=violation.variable,
                    function=violation.function,
                    line=violation.line, culprit=culprit, method=method,
                    original_size=reduction.original_size,
                    reduced_size=reduction.reduced_size,
                    steps_tried=reduction.steps_tried,
                    steps_accepted=reduction.steps_accepted,
                    reduced_source=reduction.source)
                return record, reduction
            value, failure = boundary.evaluate(seed, compute, item=item)
            if value is None:
                if run is not None:
                    persist_failure(store, run, failure)
                continue
            record, reduction = value
            result.records.append(record)
            share: Dict[str, int] = {}
            if reduction.stats is not None:
                share = reduction.stats.as_dict()
                for key, value in share.items():
                    totals[key] = totals.get(key, 0) + value
            if run is not None:
                payload = record.to_dict()
                if share:
                    # Each witness carries its own slice of the oracle
                    # accounting so a resumed run reassembles the exact
                    # aggregate (int sums are order-independent).
                    payload["stats"] = share

                def write(seed=seed, level=level, violation=violation,
                          count=count, payload=payload):
                    store.put_reduction(
                        run, seed, level, violation.conjecture,
                        violation.variable, count, payload)
                if boundary.store_write(seed, write, item=item):
                    store.clear_failure(run, seed, item)
    except KeyboardInterrupt:
        if store is not None:
            store.checkpoint()
        raise
    result.stats = totals
    result.failures = merge_failures(result.failures,
                                     boundary.failures)
    return result


def _reduce_one(compiler, level, debugger, violation, culprit, engine,
                max_steps, workers, program) -> ReductionResult:
    if engine == "reference":
        reducer = ReferenceReducer(compiler, level, debugger, violation,
                                   culprit_flag=culprit,
                                   max_steps=max_steps)
        return reducer.reduce(program)
    reducer = Reducer(compiler, level, debugger, violation,
                      culprit_flag=culprit, max_steps=max_steps)
    if engine == "parallel":
        return reducer.reduce_parallel(program, workers=workers)
    return reducer.reduce(program)
