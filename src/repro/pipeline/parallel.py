"""Parallel sharded campaign and study drivers.

The paper's core experiment is embarrassingly parallel: every seed is an
independent generate → compile-at-every-level → trace → check job. This
module shards a seed range across ``multiprocessing`` workers and merges
the per-shard :class:`~repro.pipeline.campaign.CampaignResult` values.

Design invariants (pinned by ``tests/test_parallel_campaign.py``):

* **Spawn safety** — workers never receive live ``Compiler``/``Debugger``
  objects (the defect catalog holds selector closures); they receive
  picklable specs (:class:`~repro.compilers.compiler.CompilerSpec`,
  :class:`~repro.debugger.specs.DebuggerSpec`) and rebuild the toolchain
  from the catalog. The default start method is ``spawn`` — the strictest
  one — so the same code is safe under fork too.
* **Determinism** — program generation is a pure function of the seed and
  defect selectors hash stable per-program tokens, so a shard computes
  the same ``ProgramResult`` values in any process. Merging renormalizes
  by seed; serial and parallel campaigns are therefore *bit-identical*.
* **Exact study reduction** — the sharded study concatenates per-shard,
  per-program metric lists in seed order and averages left to right, the
  same float operations in the same order as the serial run.

Merged results serialize to the same ``repro-campaign/1`` /
``repro-matrix/1`` / ``repro-study/1`` artifacts as the serial drivers
(``docs/ARTIFACTS.md``), so anything a worker fleet produces renders
through :mod:`repro.report` unchanged.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..compilers.compiler import Compiler, CompilerSpec
from ..debugger.base import Debugger
from ..debugger.specs import DebuggerSpec, spec_for
from ..faults.boundary import DEFAULT_MAX_ATTEMPTS
from ..faults.plan import FaultPlan, InjectedCrash
from ..fuzz.seeds import SeedSpec
from ..metrics.study import (
    CellSamples, StudyResult, measure_pool_cells, reduce_cells,
)
from .campaign import CampaignResult, merge_results, run_campaign_seeds
from .matrix import (
    MatrixCampaignResult, merge_matrix_results, run_matrix_campaign_seeds,
)

#: Shards handed out per worker; >1 smooths load imbalance between seeds
#: (validation retries make some programs costlier than others) and
#: bounds the blast radius of a dying worker: a crash costs at most one
#: shard's unfinished seeds per incarnation, which the supervisor in
#: ``_map_shards`` respawns.
SHARDS_PER_WORKER = 4

#: Process-level toolchain memo: workers rebuild a compiler/debugger from
#: its picklable spec **once per process**, not once per shard.  Specs
#: are frozen dataclasses, and the rebuilt objects carry no cross-shard
#: state (pinned by the spawn-determinism tests), so sharing them across
#: every shard a worker executes is safe.
_TOOLCHAIN_CACHE: dict = {}


def build_cached(spec) -> object:
    """The built toolchain object for ``spec``, memoized per process."""
    built = _TOOLCHAIN_CACHE.get(spec)
    if built is None:
        built = _TOOLCHAIN_CACHE[spec] = spec.build()
    return built


def _open_store(path: Optional[str]):
    """A worker-local :class:`~repro.store.CampaignStore` for ``path``.

    Shards carry the store as a *path*, not a handle — sqlite
    connections don't pickle and must not cross a spawn boundary.  Each
    worker opens its own connection; WAL mode plus the store's busy
    timeout make concurrent shard writes safe.  ``None`` stays ``None``
    (storeless shards skip persistence entirely).
    """
    if path is None:
        return None
    from ..store import CampaignStore  # lazy: avoid an import cycle
    return CampaignStore(path)

CompilerLike = Union[Compiler, CompilerSpec]
DebuggerLike = Union[Debugger, DebuggerSpec]


def as_compiler_spec(compiler: CompilerLike) -> CompilerSpec:
    if isinstance(compiler, CompilerSpec):
        return compiler
    return compiler.spec()


def as_debugger_spec(debugger: DebuggerLike) -> DebuggerSpec:
    if isinstance(debugger, DebuggerSpec):
        return debugger
    return spec_for(debugger)


def default_workers() -> int:
    return max(1, os.cpu_count() or 1)


def _resolve_levels(spec: CompilerSpec,
                    levels: Optional[Sequence[str]]) -> Tuple[str, ...]:
    if levels is None:
        return tuple(l for l in spec.build().levels if l != "O0")
    return tuple(levels)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded shard respawns with exponential backoff and
    deterministic jitter.

    ``max_attempts`` counts total shard incarnations; the delay before
    respawn ``attempt`` (0-based) grows as ``base * factor**attempt``
    capped at ``limit``, scaled by a jitter factor in
    ``[1 - jitter, 1 + jitter)`` hashed from ``(token, attempt)`` — the
    spread that stops a respawned fleet from thundering in lockstep,
    without a live RNG, so a supervised run's schedule reproduces.
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_limit: float = 2.0
    jitter: float = 0.5

    def delay(self, token: str, attempt: int) -> float:
        base = min(self.backoff_limit,
                   self.backoff_base * self.backoff_factor ** attempt)
        digest = hashlib.sha256(
            f"{token}:{attempt}".encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2 ** 64
        return base * (1.0 - self.jitter + 2.0 * self.jitter * fraction)


def _run_wave(worker, items: List[Tuple[int, object]], workers: int,
              start_method: str, in_process: bool):
    """One dispatch wave: run every ``(index, shard)`` item, splitting
    the outcomes into finished results and crashed shards.

    Each shard is its own future (no chunk batching): a shard that
    dies — or, before containment existed, raised — can no longer take
    a whole worker batch down with it.  Worker death surfaces as
    ``BrokenProcessPool`` on every unfinished future of the wave (the
    victim cannot be identified, so the supervisor charges every
    unfinished shard one incarnation) or as a pickled
    :class:`~repro.faults.plan.InjectedCrash` for soft-crash plans,
    which keeps per-shard attribution exact.  Any other exception is a
    driver bug and propagates.
    """
    done: dict = {}
    crashed: dict = {}
    if in_process:
        for index, shard in items:
            try:
                done[index] = worker(shard)
            except InjectedCrash as error:
                crashed[index] = error
        return done, crashed
    context = multiprocessing.get_context(start_method)
    with ProcessPoolExecutor(max_workers=min(workers, len(items)),
                             mp_context=context) as pool:
        futures = [(pool.submit(worker, shard), index)
                   for index, shard in items]
        for future, index in futures:
            try:
                done[index] = future.result()
            except (BrokenProcessPool, InjectedCrash) as error:
                crashed[index] = error
    return done, crashed


def _map_shards(worker, shards: List, workers: int, start_method: str,
                retry: Optional[RetryPolicy] = None,
                respawn: Optional[Callable] = None,
                rescue: Optional[Callable] = None,
                sleeper: Optional[Callable[[float], None]] = None
                ) -> List:
    """Run ``worker`` over every shard, in shard order.

    ``workers <= 1`` (or a single shard) stays in-process — no pool, no
    spawn cost for small jobs — while still going through the same
    shard/merge/supervision path as the multi-process run.

    With a :class:`RetryPolicy` the map is *supervised*: crashed shards
    (worker death, injected or real) are respawned — after the policy's
    backoff, with ``respawn(shard, crashes)`` deriving the retry shard
    (the drivers bump ``crash_base`` so crash accounting stays exact) —
    until the policy's attempt bound, then handed to ``rescue(shard,
    crashes, error)`` which must return a result for the abandoned
    shard (the drivers re-run it in-process under the serial
    containment boundary, quarantining the seeds that keep killing
    workers).  Finished shards are never re-run.  Without a policy,
    a crash propagates as before.
    """
    sleep = time.sleep if sleeper is None else sleeper
    in_process = workers <= 1 or len(shards) == 1
    results: List = [None] * len(shards)
    current = list(shards)
    crash_counts = [0] * len(shards)
    pending = list(range(len(shards)))
    while pending:
        done, crashed = _run_wave(
            worker, [(index, current[index]) for index in pending],
            workers, start_method, in_process)
        for index, value in done.items():
            results[index] = value
        if not crashed:
            break
        if retry is None:
            raise crashed[min(crashed)]
        respawning = []
        delay = 0.0
        for index in sorted(crashed):
            crash_counts[index] += 1
            if crash_counts[index] >= retry.max_attempts:
                if rescue is None:
                    raise crashed[index]
                results[index] = rescue(current[index],
                                        crash_counts[index],
                                        crashed[index])
                continue
            if respawn is not None:
                current[index] = respawn(current[index],
                                         crash_counts[index])
            respawning.append(index)
            delay = max(delay, retry.delay(str(index),
                                           crash_counts[index] - 1))
        if respawning and delay > 0.0:
            sleep(delay)
        pending = respawning
    return results


# -- campaign -----------------------------------------------------------------


@dataclass(frozen=True)
class CampaignShard:
    """One worker's unit of campaign work (fully picklable)."""

    compiler: CompilerSpec
    debugger: DebuggerSpec
    seeds: SeedSpec
    levels: Tuple[str, ...]
    store_path: Optional[str] = None
    faults: Optional[FaultPlan] = None
    #: How many times this shard's worker has already died — threaded
    #: into the containment boundary so respawned workers reconstruct
    #: exact crash accounting (see FaultPlan.prior_crashes).
    crash_base: int = 0
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    retry_failed: bool = True


def run_campaign_shard(shard: CampaignShard) -> CampaignResult:
    """Worker entry point: one shard on the memoized toolchain (writing
    through the shared WAL-mode store when the shard names one).
    Failures are contained per seed; injected worker death escalates
    out of the boundary for the supervisor to handle."""
    store = _open_store(shard.store_path)
    try:
        return run_campaign_seeds(
            build_cached(shard.compiler), build_cached(shard.debugger),
            shard.seeds, levels=shard.levels, store=store,
            faults=shard.faults, max_attempts=shard.max_attempts,
            crash_base=shard.crash_base, escalate_crashes=True,
            retry_failed=shard.retry_failed)
    finally:
        if store is not None:
            store.close()


def _rescue_campaign_shard(shard: CampaignShard, crashes: int,
                           error: BaseException) -> CampaignResult:
    """Last resort for a shard whose worker keeps dying: re-run it
    in the driver process under the serial containment boundary, which
    simulates the remaining crash budget per seed — the seeds that
    keep killing workers quarantine as crash records, everything else
    evaluates normally.  The campaign always completes."""
    store = _open_store(shard.store_path)
    try:
        return run_campaign_seeds(
            build_cached(shard.compiler), build_cached(shard.debugger),
            shard.seeds, levels=shard.levels, store=store,
            faults=shard.faults, max_attempts=shard.max_attempts,
            crash_base=crashes, escalate_crashes=False,
            retry_failed=shard.retry_failed)
    finally:
        if store is not None:
            store.close()


def _respawn_bump(shard, crashes: int):
    """The retry incarnation of a crashed shard."""
    return replace(shard, crash_base=crashes)


def run_campaign_parallel(compiler: CompilerLike, debugger: DebuggerLike,
                          pool_size: int = 100, seed_base: int = 0,
                          levels: Optional[Sequence[str]] = None,
                          workers: Optional[int] = None,
                          start_method: str = "spawn",
                          store_path: Optional[str] = None,
                          faults: Optional[FaultPlan] = None,
                          max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                          retry_failed: bool = True,
                          retry: Optional[RetryPolicy] = None,
                          sleeper: Optional[Callable[[float], None]] = None
                          ) -> CampaignResult:
    """Sharded, multi-process equivalent of
    :func:`~repro.pipeline.campaign.run_campaign`.

    Produces a result bit-identical to the serial driver for the same
    ``(pool_size, seed_base, levels)`` — including the failure records
    of a ``faults`` chaos plan, whose injected worker deaths the
    supervising :func:`_map_shards` absorbs by respawning crashed
    shards with bounded retries, exponential backoff and deterministic
    jitter (``retry`` overrides the policy; ``sleeper`` is the backoff
    clock, injectable for tests).  ``workers`` defaults to the CPU
    count; ``workers <= 1`` runs the shards in-process (no pool), which
    keeps small campaigns cheap while still exercising the merge and
    supervision paths.  ``store_path`` names a shared store file every
    worker writes through (and resumes from) with WAL-mode concurrent
    access — a respawned shard replays its finished seeds from the
    store, so only the unfinished range is re-evaluated.
    """
    compiler_spec = as_compiler_spec(compiler)
    debugger_spec = as_debugger_spec(debugger)
    levels = _resolve_levels(compiler_spec, levels)
    if workers is None:
        workers = default_workers()
    spec = SeedSpec(base=seed_base, count=pool_size)
    if pool_size == 0:
        return CampaignResult(family=compiler_spec.family,
                              version=compiler_spec.version,
                              levels=list(levels), pool_size=0)
    shards = [
        CampaignShard(compiler=compiler_spec, debugger=debugger_spec,
                      seeds=seed_shard, levels=levels,
                      store_path=store_path, faults=faults,
                      max_attempts=max_attempts,
                      retry_failed=retry_failed)
        for seed_shard in spec.shard(max(1, workers) * SHARDS_PER_WORKER)
    ]
    if retry is None:
        retry = RetryPolicy(max_attempts=max_attempts)
    return merge_results(
        _map_shards(run_campaign_shard, shards, workers, start_method,
                    retry=retry, respawn=_respawn_bump,
                    rescue=_rescue_campaign_shard, sleeper=sleeper))


# -- study --------------------------------------------------------------------


@dataclass(frozen=True)
class StudyShard:
    """One worker's unit of study work (fully picklable)."""

    family: str
    versions: Tuple[str, ...]
    levels: Tuple[str, ...]
    debugger: DebuggerSpec
    seeds: SeedSpec


def run_study_shard(shard: StudyShard) -> CellSamples:
    """Worker entry point: per-program metrics for one seed shard."""
    return measure_pool_cells(
        shard.seeds.generate(), shard.family, shard.versions,
        shard.levels, build_cached(shard.debugger))


def run_study_parallel(family: str, versions: Sequence[str],
                       levels: Sequence[str], debugger: DebuggerLike,
                       pool_size: int, seed_base: int = 0,
                       workers: Optional[int] = None,
                       start_method: str = "spawn") -> StudyResult:
    """Sharded Figure 1 / Table 4 study over a generated seed range.

    Bit-identical to :func:`~repro.metrics.study.run_study_seeds` on the
    same range: shard sample lists are concatenated in seed order before
    the same left-to-right reduction the serial driver uses.
    """
    debugger_spec = as_debugger_spec(debugger)
    if workers is None:
        workers = default_workers()
    spec = SeedSpec(base=seed_base, count=pool_size)
    if pool_size == 0:
        return StudyResult(pool_size=0)
    shards = [
        StudyShard(family=family, versions=tuple(versions),
                   levels=tuple(levels), debugger=debugger_spec,
                   seeds=seed_shard)
        for seed_shard in spec.shard(max(1, workers) * SHARDS_PER_WORKER)
    ]
    parts = _map_shards(run_study_shard, shards, workers, start_method)
    cells: CellSamples = {}
    for part in parts:  # shard order == seed order
        for key, samples in part.items():
            cells.setdefault(key, []).extend(samples)
    return reduce_cells(cells, pool_size=pool_size)


# -- compile-once matrix ------------------------------------------------------


@dataclass(frozen=True)
class MatrixShard:
    """One worker's unit of matrix work (fully picklable)."""

    compilers: Tuple[CompilerSpec, ...]
    debuggers: Tuple[DebuggerSpec, ...]
    seeds: SeedSpec
    levels: Optional[Tuple[str, ...]] = None
    store_path: Optional[str] = None
    faults: Optional[FaultPlan] = None
    crash_base: int = 0
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    retry_failed: bool = True


def run_matrix_shard(shard: MatrixShard) -> MatrixCampaignResult:
    """Worker entry point: the compile-once matrix over one seed shard.

    The returned result carries per-seed lowered-module fingerprints;
    the merge rejects shards that disagree, so a worker whose frontend
    diverged from the serial driver's cannot silently corrupt the
    campaign.  Injected worker death escalates for the supervisor.
    """
    store = _open_store(shard.store_path)
    try:
        return run_matrix_campaign_seeds(
            [build_cached(spec) for spec in shard.compilers],
            [build_cached(spec) for spec in shard.debuggers],
            shard.seeds, levels=shard.levels, store=store,
            faults=shard.faults, max_attempts=shard.max_attempts,
            crash_base=shard.crash_base, escalate_crashes=True,
            retry_failed=shard.retry_failed)
    finally:
        if store is not None:
            store.close()


def _rescue_matrix_shard(shard: MatrixShard, crashes: int,
                         error: BaseException) -> MatrixCampaignResult:
    """Re-run an abandoned matrix shard in-driver under the serial
    containment boundary (crash-heavy seeds quarantine per cell)."""
    store = _open_store(shard.store_path)
    try:
        return run_matrix_campaign_seeds(
            [build_cached(spec) for spec in shard.compilers],
            [build_cached(spec) for spec in shard.debuggers],
            shard.seeds, levels=shard.levels, store=store,
            faults=shard.faults, max_attempts=shard.max_attempts,
            crash_base=crashes, escalate_crashes=False,
            retry_failed=shard.retry_failed)
    finally:
        if store is not None:
            store.close()


def run_matrix_campaign_parallel(
        compilers: Optional[Sequence[CompilerLike]] = None,
        debuggers: Optional[Sequence[DebuggerLike]] = None,
        pool_size: int = 100, seed_base: int = 0,
        levels: Optional[Sequence[str]] = None,
        workers: Optional[int] = None,
        start_method: str = "spawn",
        families: Optional[Sequence[str]] = None,
        version: str = "trunk",
        store_path: Optional[str] = None,
        faults: Optional[FaultPlan] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        retry_failed: bool = True,
        retry: Optional[RetryPolicy] = None,
        sleeper: Optional[Callable[[float], None]] = None
        ) -> MatrixCampaignResult:
    """Sharded, multi-process compile-once matrix campaign.

    Bit-identical to :func:`~repro.pipeline.matrix.run_matrix_campaign`
    for the same arguments — chaos plans included: shards are seed
    ranges, workers regenerate and lower each program once, the merged
    result's fingerprints prove the lowered modules match the serial
    run's, and injected worker deaths are supervised with bounded
    respawns exactly like :func:`run_campaign_parallel`.
    """
    if compilers is None:
        chosen = tuple(families) if families else ("gcc", "clang")
        compilers = [CompilerSpec(family=family, version=version)
                     for family in chosen]
    if debuggers is None:
        debuggers = ("gdb-like", "lldb-like")
    compiler_specs = tuple(as_compiler_spec(c) for c in compilers)
    debugger_specs = tuple(
        DebuggerSpec(name=d) if isinstance(d, str) else as_debugger_spec(d)
        for d in debuggers)
    if workers is None:
        workers = default_workers()
    spec = SeedSpec(base=seed_base, count=pool_size)
    if pool_size == 0:
        return run_matrix_campaign_seeds(
            compiler_specs, debugger_specs, spec, levels=levels)
    shards = [
        MatrixShard(compilers=compiler_specs, debuggers=debugger_specs,
                    seeds=seed_shard,
                    levels=tuple(levels) if levels is not None else None,
                    store_path=store_path, faults=faults,
                    max_attempts=max_attempts,
                    retry_failed=retry_failed)
        for seed_shard in spec.shard(max(1, workers) * SHARDS_PER_WORKER)
    ]
    if retry is None:
        retry = RetryPolicy(max_attempts=max_attempts)
    return merge_matrix_results(
        _map_shards(run_matrix_shard, shards, workers, start_method,
                    retry=retry, respawn=_respawn_bump,
                    rescue=_rescue_matrix_shard, sleeper=sleeper))
