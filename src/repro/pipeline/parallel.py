"""Parallel sharded campaign and study drivers.

The paper's core experiment is embarrassingly parallel: every seed is an
independent generate → compile-at-every-level → trace → check job. This
module shards a seed range across ``multiprocessing`` workers and merges
the per-shard :class:`~repro.pipeline.campaign.CampaignResult` values.

Design invariants (pinned by ``tests/test_parallel_campaign.py``):

* **Spawn safety** — workers never receive live ``Compiler``/``Debugger``
  objects (the defect catalog holds selector closures); they receive
  picklable specs (:class:`~repro.compilers.compiler.CompilerSpec`,
  :class:`~repro.debugger.specs.DebuggerSpec`) and rebuild the toolchain
  from the catalog. The default start method is ``spawn`` — the strictest
  one — so the same code is safe under fork too.
* **Determinism** — program generation is a pure function of the seed and
  defect selectors hash stable per-program tokens, so a shard computes
  the same ``ProgramResult`` values in any process. Merging renormalizes
  by seed; serial and parallel campaigns are therefore *bit-identical*.
* **Exact study reduction** — the sharded study concatenates per-shard,
  per-program metric lists in seed order and averages left to right, the
  same float operations in the same order as the serial run.

Merged results serialize to the same ``repro-campaign/1`` /
``repro-matrix/1`` / ``repro-study/1`` artifacts as the serial drivers
(``docs/ARTIFACTS.md``), so anything a worker fleet produces renders
through :mod:`repro.report` unchanged.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..compilers.compiler import Compiler, CompilerSpec
from ..debugger.base import Debugger
from ..debugger.specs import DebuggerSpec, spec_for
from ..fuzz.seeds import SeedSpec
from ..metrics.study import (
    CellSamples, StudyResult, measure_pool_cells, reduce_cells,
)
from .campaign import CampaignResult, merge_results, run_campaign_seeds
from .matrix import (
    MatrixCampaignResult, merge_matrix_results, run_matrix_campaign_seeds,
)

#: Shards handed out per worker; >1 smooths load imbalance between seeds
#: (validation retries make some programs costlier than others).  Shards
#: are dispatched to the pool in small batches (see ``_map_shards``) so
#: a worker picks up several per round trip instead of paying IPC per
#: tiny shard.
SHARDS_PER_WORKER = 4

#: Process-level toolchain memo: workers rebuild a compiler/debugger from
#: its picklable spec **once per process**, not once per shard.  Specs
#: are frozen dataclasses, and the rebuilt objects carry no cross-shard
#: state (pinned by the spawn-determinism tests), so sharing them across
#: every shard a worker executes is safe.
_TOOLCHAIN_CACHE: dict = {}


def build_cached(spec) -> object:
    """The built toolchain object for ``spec``, memoized per process."""
    built = _TOOLCHAIN_CACHE.get(spec)
    if built is None:
        built = _TOOLCHAIN_CACHE[spec] = spec.build()
    return built


def _open_store(path: Optional[str]):
    """A worker-local :class:`~repro.store.CampaignStore` for ``path``.

    Shards carry the store as a *path*, not a handle — sqlite
    connections don't pickle and must not cross a spawn boundary.  Each
    worker opens its own connection; WAL mode plus the store's busy
    timeout make concurrent shard writes safe.  ``None`` stays ``None``
    (storeless shards skip persistence entirely).
    """
    if path is None:
        return None
    from ..store import CampaignStore  # lazy: avoid an import cycle
    return CampaignStore(path)

CompilerLike = Union[Compiler, CompilerSpec]
DebuggerLike = Union[Debugger, DebuggerSpec]


def as_compiler_spec(compiler: CompilerLike) -> CompilerSpec:
    if isinstance(compiler, CompilerSpec):
        return compiler
    return compiler.spec()


def as_debugger_spec(debugger: DebuggerLike) -> DebuggerSpec:
    if isinstance(debugger, DebuggerSpec):
        return debugger
    return spec_for(debugger)


def default_workers() -> int:
    return max(1, os.cpu_count() or 1)


def _resolve_levels(spec: CompilerSpec,
                    levels: Optional[Sequence[str]]) -> Tuple[str, ...]:
    if levels is None:
        return tuple(l for l in spec.build().levels if l != "O0")
    return tuple(levels)


def _map_shards(worker, shards: List, workers: int,
                start_method: str) -> List:
    """Run ``worker`` over every shard, in shard order.

    ``workers <= 1`` (or a single shard) stays in-process — no pool, no
    spawn cost for small jobs — while still going through the same
    shard/merge path as the multi-process run.  Shards are dispatched in
    chunks of :data:`SHARDS_PER_WORKER` so each pool round trip carries a
    worker's whole batch (one IPC exchange, one toolchain-cache warmup)
    instead of a single tiny shard.
    """
    if workers <= 1 or len(shards) == 1:
        return [worker(shard) for shard in shards]
    context = multiprocessing.get_context(start_method)
    with context.Pool(processes=min(workers, len(shards))) as pool:
        # chunksize=2 batches dispatch (half the IPC round trips) while
        # keeping two waves per worker, so a shard whose seeds validate
        # slowly does not pin a statically assigned straggler.
        return pool.map(worker, shards, chunksize=2)


# -- campaign -----------------------------------------------------------------


@dataclass(frozen=True)
class CampaignShard:
    """One worker's unit of campaign work (fully picklable)."""

    compiler: CompilerSpec
    debugger: DebuggerSpec
    seeds: SeedSpec
    levels: Tuple[str, ...]
    store_path: Optional[str] = None


def run_campaign_shard(shard: CampaignShard) -> CampaignResult:
    """Worker entry point: one shard on the memoized toolchain (writing
    through the shared WAL-mode store when the shard names one)."""
    store = _open_store(shard.store_path)
    try:
        return run_campaign_seeds(
            build_cached(shard.compiler), build_cached(shard.debugger),
            shard.seeds, levels=shard.levels, store=store)
    finally:
        if store is not None:
            store.close()


def run_campaign_parallel(compiler: CompilerLike, debugger: DebuggerLike,
                          pool_size: int = 100, seed_base: int = 0,
                          levels: Optional[Sequence[str]] = None,
                          workers: Optional[int] = None,
                          start_method: str = "spawn",
                          store_path: Optional[str] = None
                          ) -> CampaignResult:
    """Sharded, multi-process equivalent of
    :func:`~repro.pipeline.campaign.run_campaign`.

    Produces a result bit-identical to the serial driver for the same
    ``(pool_size, seed_base, levels)``. ``workers`` defaults to the CPU
    count; ``workers <= 1`` runs the shards in-process (no pool), which
    keeps small campaigns cheap while still exercising the merge path.
    ``store_path`` names a shared store file every worker writes through
    (and resumes from) with WAL-mode concurrent access.
    """
    compiler_spec = as_compiler_spec(compiler)
    debugger_spec = as_debugger_spec(debugger)
    levels = _resolve_levels(compiler_spec, levels)
    if workers is None:
        workers = default_workers()
    spec = SeedSpec(base=seed_base, count=pool_size)
    if pool_size == 0:
        return CampaignResult(family=compiler_spec.family,
                              version=compiler_spec.version,
                              levels=list(levels), pool_size=0)
    shards = [
        CampaignShard(compiler=compiler_spec, debugger=debugger_spec,
                      seeds=seed_shard, levels=levels,
                      store_path=store_path)
        for seed_shard in spec.shard(max(1, workers) * SHARDS_PER_WORKER)
    ]
    return merge_results(
        _map_shards(run_campaign_shard, shards, workers, start_method))


# -- study --------------------------------------------------------------------


@dataclass(frozen=True)
class StudyShard:
    """One worker's unit of study work (fully picklable)."""

    family: str
    versions: Tuple[str, ...]
    levels: Tuple[str, ...]
    debugger: DebuggerSpec
    seeds: SeedSpec


def run_study_shard(shard: StudyShard) -> CellSamples:
    """Worker entry point: per-program metrics for one seed shard."""
    return measure_pool_cells(
        shard.seeds.generate(), shard.family, shard.versions,
        shard.levels, build_cached(shard.debugger))


def run_study_parallel(family: str, versions: Sequence[str],
                       levels: Sequence[str], debugger: DebuggerLike,
                       pool_size: int, seed_base: int = 0,
                       workers: Optional[int] = None,
                       start_method: str = "spawn") -> StudyResult:
    """Sharded Figure 1 / Table 4 study over a generated seed range.

    Bit-identical to :func:`~repro.metrics.study.run_study_seeds` on the
    same range: shard sample lists are concatenated in seed order before
    the same left-to-right reduction the serial driver uses.
    """
    debugger_spec = as_debugger_spec(debugger)
    if workers is None:
        workers = default_workers()
    spec = SeedSpec(base=seed_base, count=pool_size)
    if pool_size == 0:
        return StudyResult(pool_size=0)
    shards = [
        StudyShard(family=family, versions=tuple(versions),
                   levels=tuple(levels), debugger=debugger_spec,
                   seeds=seed_shard)
        for seed_shard in spec.shard(max(1, workers) * SHARDS_PER_WORKER)
    ]
    parts = _map_shards(run_study_shard, shards, workers, start_method)
    cells: CellSamples = {}
    for part in parts:  # shard order == seed order
        for key, samples in part.items():
            cells.setdefault(key, []).extend(samples)
    return reduce_cells(cells, pool_size=pool_size)


# -- compile-once matrix ------------------------------------------------------


@dataclass(frozen=True)
class MatrixShard:
    """One worker's unit of matrix work (fully picklable)."""

    compilers: Tuple[CompilerSpec, ...]
    debuggers: Tuple[DebuggerSpec, ...]
    seeds: SeedSpec
    levels: Optional[Tuple[str, ...]] = None
    store_path: Optional[str] = None


def run_matrix_shard(shard: MatrixShard) -> MatrixCampaignResult:
    """Worker entry point: the compile-once matrix over one seed shard.

    The returned result carries per-seed lowered-module fingerprints;
    the merge rejects shards that disagree, so a worker whose frontend
    diverged from the serial driver's cannot silently corrupt the
    campaign.
    """
    store = _open_store(shard.store_path)
    try:
        return run_matrix_campaign_seeds(
            [build_cached(spec) for spec in shard.compilers],
            [build_cached(spec) for spec in shard.debuggers],
            shard.seeds, levels=shard.levels, store=store)
    finally:
        if store is not None:
            store.close()


def run_matrix_campaign_parallel(
        compilers: Optional[Sequence[CompilerLike]] = None,
        debuggers: Optional[Sequence[DebuggerLike]] = None,
        pool_size: int = 100, seed_base: int = 0,
        levels: Optional[Sequence[str]] = None,
        workers: Optional[int] = None,
        start_method: str = "spawn",
        families: Optional[Sequence[str]] = None,
        version: str = "trunk",
        store_path: Optional[str] = None) -> MatrixCampaignResult:
    """Sharded, multi-process compile-once matrix campaign.

    Bit-identical to :func:`~repro.pipeline.matrix.run_matrix_campaign`
    for the same arguments: shards are seed ranges, workers regenerate
    and lower each program once, and the merged result's fingerprints
    prove the lowered modules match the serial run's.
    """
    if compilers is None:
        chosen = tuple(families) if families else ("gcc", "clang")
        compilers = [CompilerSpec(family=family, version=version)
                     for family in chosen]
    if debuggers is None:
        debuggers = ("gdb-like", "lldb-like")
    compiler_specs = tuple(as_compiler_spec(c) for c in compilers)
    debugger_specs = tuple(
        DebuggerSpec(name=d) if isinstance(d, str) else as_debugger_spec(d)
        for d in debuggers)
    if workers is None:
        workers = default_workers()
    spec = SeedSpec(base=seed_base, count=pool_size)
    if pool_size == 0:
        return run_matrix_campaign_seeds(
            compiler_specs, debugger_specs, spec, levels=levels)
    shards = [
        MatrixShard(compilers=compiler_specs, debuggers=debugger_specs,
                    seeds=seed_shard,
                    levels=tuple(levels) if levels is not None else None,
                    store_path=store_path)
        for seed_shard in spec.shard(max(1, workers) * SHARDS_PER_WORKER)
    ]
    return merge_matrix_results(
        _map_shards(run_matrix_shard, shards, workers, start_method))
