"""Compile-once evaluation matrix (the paper's full experiment grid).

The core experiment (Table 1, Figures 1-4) pushes every pool program
through every (compiler family x version x opt level x debugger) cell.
The per-cell drivers (:func:`~repro.pipeline.campaign.run_campaign`) redo
the whole frontend — generate, validate, resolve, lower — for *every*
cell, and recompile at every level for every debugger.  The matrix driver
restructures the loop around shared state:

* each seed program is generated/validated **once**
  (:class:`~repro.compilers.frontend.FrontendSession`);
* ``SourceFacts`` and the defect-selector program token are computed
  **once** per program;
* the program is resolved and lowered to IR **once**; every
  (family, version, level) cell mutates a cheap private clone
  (:func:`~repro.ir.clone.clone_module`);
* each cell's *compilation* is shared across all debugger cells — the
  debuggers re-trace the same executable instead of forcing a recompile.

Results are **bit-identical** to the per-cell path: every cell of a
:class:`MatrixCampaignResult` has exactly the ``to_json()`` artifact the
corresponding ``run_campaign`` call would produce (pinned by
``tests/test_matrix_fastpaths.py``).  Per-seed lowered-module
fingerprints ride along so the sharded driver
(:func:`~repro.pipeline.parallel.run_matrix_campaign_parallel`) can prove
its workers lowered the same IR the serial driver would have.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..compilers.compiler import Compiler, CompilerSpec
from ..compilers.frontend import FrontendSession
from ..conjectures.base import Violation, check_all
from ..debugger.base import Debugger, trace_all
from ..debugger.specs import DEBUGGER_REGISTRY, DebuggerSpec
from ..faults.boundary import DEFAULT_MAX_ATTEMPTS, FailureBoundary
from ..faults.plan import FaultPlan
from ..faults.records import FailureRecord, merge_failures
from ..fuzz.seeds import SeedSpec
from ..metrics.study import (
    CellSamples, StudyResult, compare_traces, reduce_cells,
)
from ..lang.printer import print_program
from ..target.codegen import link
from .campaign import (
    CAMPAIGN_SCHEMA, CampaignResult, ProgramResult, fold_results,
    missing_field_error, persist_failure, stored_failure,
)

#: Artifact schema tag for stored matrix results.
MATRIX_SCHEMA = "repro-matrix/1"

#: One campaign cell: (family, version, debugger name).
MatrixCellKey = Tuple[str, str, str]

CompilerLike = Union[Compiler, CompilerSpec]
DebuggerLike = Union[Debugger, DebuggerSpec, str]

#: The paper's consumer set: every executable is traced in both
#: debuggers, which is exactly what makes compile sharing pay off.
DEFAULT_DEBUGGERS = ("gdb-like", "lldb-like")


def _build_compiler(compiler: CompilerLike) -> Compiler:
    if isinstance(compiler, CompilerSpec):
        return compiler.build()
    return compiler


def _build_debugger(debugger: DebuggerLike) -> Debugger:
    if isinstance(debugger, str):
        return DEBUGGER_REGISTRY[debugger]()
    if isinstance(debugger, DebuggerSpec):
        return debugger.build()
    return debugger


def _campaign_levels(compiler: Compiler,
                     levels: Optional[Sequence[str]]) -> List[str]:
    if levels is None:
        return [l for l in compiler.levels if l != "O0"]
    return list(levels)


@dataclass
class MatrixCampaignResult:
    """Every (family, version, debugger) cell's campaign, plus the
    determinism fingerprints of the shared frontend pool."""

    pool_size: int = 0
    cells: Dict[MatrixCellKey, CampaignResult] = field(
        default_factory=dict)
    #: seed -> counter-normalized lowered-module digest
    fingerprints: Dict[int, str] = field(default_factory=dict)

    def cell(self, family: str, version: str = "trunk",
             debugger: str = "gdb-like") -> CampaignResult:
        return self.cells[(family, version, debugger)]

    def cell_keys(self) -> List[MatrixCellKey]:
        return sorted(self.cells)

    @property
    def failures(self) -> List[FailureRecord]:
        """Every contained failure across the matrix, deduplicated.

        Matrix failures live on the per-cell campaigns (a shared
        frontend fault is replicated into each affected cell with its
        own ``cell`` tag), so the artifact schema is unchanged; this
        view aggregates them for reporting.
        """
        merged: List[FailureRecord] = []
        for key in self.cell_keys():
            merged = merge_failures(merged, self.cells[key].failures)
        return merged

    # -- merging -------------------------------------------------------------

    def merge(self, other: "MatrixCampaignResult"
              ) -> "MatrixCampaignResult":
        """Combine two shard results (disjoint seed ranges).

        Associative and order-independent like
        :meth:`~repro.pipeline.campaign.CampaignResult.merge`; cells are
        merged pairwise and fingerprints are unioned (a seed appearing in
        both shards with different fingerprints means the workers lowered
        divergent IR and is an error).
        """
        if set(self.cells) != set(other.cells):
            raise ValueError(
                f"cannot merge matrix results over different cell sets: "
                f"{sorted(self.cells)} vs {sorted(other.cells)}")
        merged = MatrixCampaignResult(
            pool_size=self.pool_size + other.pool_size)
        for key in self.cells:
            merged.cells[key] = self.cells[key].merge(other.cells[key])
        merged.fingerprints = dict(self.fingerprints)
        for seed, fingerprint in other.fingerprints.items():
            existing = merged.fingerprints.get(seed)
            if existing is not None and existing != fingerprint:
                raise ValueError(
                    f"shards disagree on the lowered module of seed "
                    f"{seed}: {existing[:12]} vs {fingerprint[:12]}")
            merged.fingerprints[seed] = fingerprint
        return merged

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": MATRIX_SCHEMA,
            "pool_size": self.pool_size,
            "fingerprints": {str(seed): fp for seed, fp
                             in self.fingerprints.items()},
            "cells": [
                {"family": family, "version": version,
                 "debugger": debugger,
                 "campaign": self.cells[(family, version,
                                         debugger)].to_dict()}
                for family, version, debugger in self.cell_keys()
            ],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The ``repro-matrix/1`` artifact document (field-by-field
        spec in ``docs/ARTIFACTS.md``)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]
                  ) -> "MatrixCampaignResult":
        schema = data.get("schema")
        if schema != MATRIX_SCHEMA:
            raise ValueError(
                f"not a matrix artifact: schema {schema!r} "
                f"(expected {MATRIX_SCHEMA!r})")
        try:
            result = cls(pool_size=data["pool_size"])
            result.fingerprints = {int(seed): fp for seed, fp
                                   in data["fingerprints"].items()}
            for cell in data["cells"]:
                key = (cell["family"], cell["version"], cell["debugger"])
                result.cells[key] = CampaignResult.from_dict(
                    cell["campaign"])
            return result
        except KeyError as error:
            raise missing_field_error(MATRIX_SCHEMA, error) from None

    @classmethod
    def from_json(cls, text: str) -> "MatrixCampaignResult":
        """Load a stored ``repro-matrix/1`` artifact (see
        ``docs/ARTIFACTS.md``)."""
        return cls.from_dict(json.loads(text))

    # -- reporting ------------------------------------------------------------

    def format_summary(self) -> str:
        """Per-cell Table 1 summaries as fixed-width console text."""
        from ..report.tables import format_table1_text
        rows = []
        for family, version, debugger in self.cell_keys():
            campaign = self.cells[(family, version, debugger)]
            rows.append(f"== {family}-{version} x {debugger} ==")
            rows.append(format_table1_text(campaign))
            rows.append("")
        return "\n".join(rows).rstrip()


def merge_matrix_results(results: Iterable[MatrixCampaignResult]
                         ) -> MatrixCampaignResult:
    """Fold any number of shard results into one (at least one needed;
    a single shard is returned unchanged — see
    :func:`~repro.pipeline.campaign.fold_results`)."""
    return fold_results(results)


def _cell_name(key: MatrixCellKey) -> str:
    """The failure-record cell tag — the same string the per-cell
    campaign driver uses, so matrix failures join per-cell ones."""
    family, version, debugger = key
    return f"{family}-{version}/{debugger}"


def run_matrix_campaign_seeds(
        compilers: Sequence[CompilerLike],
        debuggers: Sequence[DebuggerLike],
        seeds: SeedSpec,
        levels: Optional[Sequence[str]] = None,
        store=None,
        faults: Optional[FaultPlan] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        crash_base: int = 0,
        escalate_crashes: bool = False,
        retry_failed: bool = True) -> MatrixCampaignResult:
    """Compile-once campaign over an explicit seed range (one shard).

    For each seed: one frontend session; per compiler, one backend run
    per level over a private clone of the shared lowering; per debugger,
    one trace of each already-linked executable.

    With a :class:`~repro.store.CampaignStore`, each matrix cell resumes
    independently: cells are the same ``(family, version, debugger,
    level set)`` keys plain campaigns use, so a matrix run reuses — and
    feeds — single-cell campaign results.  A seed whose cells all hit
    skips the frontend and every compile; a partially stored seed
    recompiles each level once and re-traces only the debuggers whose
    cells are missing.

    Evaluation is fault-contained: a seed that keeps failing is
    quarantined instead of aborting the matrix, with the shared-frontend
    failure replicated into every still-unevaluated cell (tagged with
    that cell's name) — fault decisions are keyed by ``(stage, seed)``,
    never by cell, so the per-cell campaign driver under the same plan
    produces the same per-cell records (up to the traceback ``digest``,
    which fingerprints the driver's own frames).  ``KeyboardInterrupt``
    flushes the store before propagating.
    """
    built_compilers = [_build_compiler(c) for c in compilers]
    built_debuggers = [_build_debugger(d) for d in debuggers]
    compiler_levels = [_campaign_levels(compiler, levels)
                       for compiler in built_compilers]
    result = MatrixCampaignResult(pool_size=seeds.count)
    cell_runs: Dict[MatrixCellKey, int] = {}
    for compiler, run_levels in zip(built_compilers, compiler_levels):
        for debugger in built_debuggers:
            key = (compiler.family, compiler.version, debugger.name)
            if key in result.cells:
                raise ValueError(
                    f"duplicate matrix cell {key}: compilers and "
                    f"debuggers must be unique per (family, version, "
                    f"debugger)")
            result.cells[key] = CampaignResult(
                family=compiler.family, version=compiler.version,
                levels=list(run_levels), pool_size=seeds.count)
            if store is not None:
                cell_runs[key] = store.run_id(
                    CAMPAIGN_SCHEMA, compiler.family, compiler.version,
                    run_levels, debugger=debugger.name)

    boundary = FailureBoundary("matrix", faults=faults,
                               max_attempts=max_attempts,
                               crash_base=crash_base,
                               escalate_crashes=escalate_crashes)
    try:
        for seed in seeds.seeds():
            stored_programs: Dict[MatrixCellKey, ProgramResult] = {}
            carried: Dict[MatrixCellKey, FailureRecord] = {}
            if store is not None:
                for key, run in cell_runs.items():
                    payload = store.get_result(run, seed)
                    if payload is not None:
                        stored_programs[key] = ProgramResult.from_dict(
                            payload)
                    elif not retry_failed:
                        prior = stored_failure(store, run, seed)
                        if prior is not None:
                            carried[key] = prior
            for key in result.cells:
                if key in carried:
                    result.cells[key].failures.append(carried[key])
                elif key in stored_programs:
                    result.cells[key].programs.append(
                        stored_programs[key])
            live = [key for key in result.cells
                    if key not in stored_programs
                    and key not in carried]
            if not live:
                if stored_programs:
                    # Every cell already evaluated this seed: no
                    # frontend, no compiles.  The fingerprint is served
                    # from the store when a previous matrix run
                    # recorded it; cells filled by plain campaigns need
                    # one frontend pass (still zero compiles).
                    fingerprint = store.module_fingerprint(seed)
                    if fingerprint is None:
                        fingerprint = FrontendSession(seed).fingerprint
                        store.record_module_fingerprint(seed,
                                                        fingerprint)
                    result.fingerprints[seed] = fingerprint
                continue

            def compute(probe, seed=seed, live=live):
                probe("generate")
                session = FrontendSession(seed)
                facts = session.facts
                token = session.program_token
                computed: Dict[MatrixCellKey, ProgramResult] = {}
                for compiler, run_levels in zip(built_compilers,
                                                compiler_levels):
                    missing = [
                        debugger for debugger in built_debuggers
                        if (compiler.family, compiler.version,
                            debugger.name) in live]
                    if not missing:
                        continue
                    per_debugger: List[Dict[str, List[Violation]]] = [
                        {} for _ in missing]
                    fired: Dict[str, List[str]] = {}
                    for level in run_levels:
                        # Compile once per level and execute once;
                        # every debugger cell observes the same stops.
                        probe("compile")
                        compilation = compiler.compile_ir(
                            session.ir_module(), level,
                            program_token=token)
                        fired_ids = compilation.fired_defects()
                        if fired_ids:
                            fired[level] = fired_ids
                        probe("trace")
                        traces = trace_all(compilation.exe, missing)
                        for violations, trace in zip(per_debugger,
                                                     traces):
                            violations[level] = check_all(facts, trace)
                    for debugger, violations in zip(missing,
                                                    per_debugger):
                        computed[(compiler.family, compiler.version,
                                  debugger.name)] = ProgramResult(
                            seed=seed, violations=violations,
                            fired={level: list(ids)
                                   for level, ids in fired.items()})
                return session, computed

            value, record = boundary.evaluate(seed, compute)
            if value is None:
                for key in live:
                    cell_record = record.with_cell(_cell_name(key))
                    result.cells[key].failures.append(cell_record)
                    if store is not None:
                        persist_failure(store, cell_runs[key],
                                        cell_record)
                continue
            session, computed = value
            result.fingerprints[seed] = session.fingerprint
            if record is not None:
                for key in live:
                    result.cells[key].failures.append(
                        record.with_cell(_cell_name(key)))
            for key in live:
                program_result = computed[key]
                result.cells[key].programs.append(program_result)
                if store is not None:
                    def write(key=key, program_result=program_result,
                              session=session, seed=seed):
                        store.add_program(
                            seed, print_program(session.program))
                        store.record_module_fingerprint(
                            seed, session.fingerprint)
                        store.put_result(cell_runs[key], seed,
                                         program_result.to_dict())
                    before = len(boundary.failures)
                    if boundary.store_write(seed, write,
                                            cell=_cell_name(key)):
                        store.clear_failure(cell_runs[key], seed, "")
                    # store_write records (recovered or quarantined
                    # store-stage failures) belong to this cell.
                    result.cells[key].failures.extend(
                        boundary.failures[before:])
    except KeyboardInterrupt:
        if store is not None:
            store.checkpoint()
        raise
    return result


def run_matrix_campaign(
        compilers: Optional[Sequence[CompilerLike]] = None,
        debuggers: Optional[Sequence[DebuggerLike]] = None,
        pool_size: int = 100, seed_base: int = 0,
        levels: Optional[Sequence[str]] = None,
        families: Optional[Sequence[str]] = None,
        version: str = "trunk", store=None,
        faults: Optional[FaultPlan] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        retry_failed: bool = True) -> MatrixCampaignResult:
    """The full evaluation matrix over a generated seed range.

    ``compilers`` defaults to the trunk compiler of every family in
    ``families`` (default: gcc and clang); ``debuggers`` defaults to
    both consumers.  Every cell is bit-identical to the corresponding
    per-cell :func:`~repro.pipeline.campaign.run_campaign` run.
    ``store`` makes the run resumable per cell (see
    :func:`run_matrix_campaign_seeds`); ``faults`` threads a chaos
    plan into the containment boundary.
    """
    if compilers is None:
        families = tuple(families) if families else ("gcc", "clang")
        compilers = [Compiler(family, version) for family in families]
    if debuggers is None:
        debuggers = DEFAULT_DEBUGGERS
    return run_matrix_campaign_seeds(
        compilers, debuggers,
        SeedSpec(base=seed_base, count=pool_size), levels=levels,
        store=store, faults=faults, max_attempts=max_attempts,
        retry_failed=retry_failed)


# -- the metrics study over the shared pool -----------------------------------


def run_matrix_study(family: str, versions: Sequence[str],
                     levels: Sequence[str], debugger: DebuggerLike,
                     pool_size: int, seed_base: int = 0) -> StudyResult:
    """The Figure 1 study over the compile-once pool.

    The per-cell driver (:func:`~repro.metrics.study.run_study_seeds`)
    recompiles and re-traces the ``-O0`` baseline for every compiler
    version; here one baseline trace per program is shared across all
    (version, level) cells — legitimately, because no pass pipeline runs
    and no defect hooks are consulted at ``-O0``.  Floats come out
    bit-identical: the same traces reach the same left-to-right
    reduction.
    """
    built_debugger = _build_debugger(debugger)
    sessions = [FrontendSession(seed)
                for seed in SeedSpec(seed_base, pool_size).seeds()]
    baselines = [built_debugger.trace(link(session.ir_module()))
                 for session in sessions]
    cells: CellSamples = {}
    for version in versions:
        compiler = Compiler(family, version)
        for level in levels:
            cells[(version, level)] = [
                compare_traces(
                    baseline,
                    built_debugger.trace(
                        compiler.compile_ir(
                            session.ir_module(), level,
                            program_token=session.program_token).exe))
                for session, baseline in zip(sessions, baselines)
            ]
    return reduce_cells(cells, pool_size=pool_size)
