"""End-to-end testing campaigns (Section 5.1/5.2 drivers).

``run_campaign`` reproduces the paper's core experiment: generate N
programs, compile each at every optimization level of a compiler, trace in
the family's native debugger, check the three conjectures, and aggregate:

* per-level violation counts per conjecture (Table 1's body);
* unique violations (deduplicated across levels — Table 1's last row);
* the level-set membership of each unique violation (Figures 2/3's Venn
  regions);
* per-program violated-conjecture counts (Figure 4's grid rows).

Results are **pure, mergeable values**: a shard's ``CampaignResult`` is a
plain dataclass over frozen :class:`~repro.conjectures.base.Violation`
records, :meth:`CampaignResult.merge` is associative and order-independent
over disjoint seed ranges (it renormalizes program order by seed), and
``to_json``/``from_json`` round-trip exactly. This is what lets the
parallel driver (:mod:`repro.pipeline.parallel`) shard a campaign across
processes and still reproduce the serial aggregates bit for bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set,
    Tuple,
)

from ..analysis.source_facts import SourceFacts
from ..compilers.compiler import Compiler
from ..conjectures.base import CONJECTURES, Violation, check_all
from ..debugger.base import Debugger
from ..faults.boundary import DEFAULT_MAX_ATTEMPTS, FailureBoundary
from ..faults.plan import FaultPlan
from ..faults.records import (
    FailureRecord, failures_from_dicts, failures_to_dicts,
    merge_failures,
)
from ..fuzz.generator import generate_validated
from ..fuzz.seeds import SeedSpec
from ..lang.ast_nodes import Program
from ..lang.printer import print_program

#: A unique violation identity: (conjecture, line, variable).
ViolationKey = Tuple[str, int, str]

#: Artifact schema tag; bump only with a migration path in ``from_dict``.
CAMPAIGN_SCHEMA = "repro-campaign/1"

_VIOLATION_FIELDS = (
    "conjecture", "line", "variable", "function", "observed", "detail",
)


def missing_field_error(schema: str, error: KeyError) -> ValueError:
    """The uniform diagnosis every artifact loader raises when a stored
    document lacks a required field — callers (DB ingest, CLI loads)
    report it instead of a bare ``KeyError``."""
    return ValueError(f"malformed {schema} artifact: "
                      f"missing field {error.args[0]!r}")


def fold_results(results: Iterable, what: str = "results"):
    """Fold shard results into one via pairwise ``merge``.

    The one folder every result type shares, so the edge cases behave
    identically everywhere: an empty iterable raises immediately (not
    after consuming the input), and a single shard is returned **as
    is** — the exact object, never a lossy copy — so ``fold([r])``
    round-trips unchanged.
    """
    iterator = iter(results)
    try:
        merged = next(iterator)
    except StopIteration:
        raise ValueError(
            f"cannot merge an empty sequence of {what}") from None
    for result in iterator:
        merged = merged.merge(result)
    return merged


def _violation_to_dict(violation: Violation) -> Dict[str, object]:
    return {name: getattr(violation, name) for name in _VIOLATION_FIELDS}


def _violation_from_dict(data: Dict[str, object]) -> Violation:
    return Violation(**{name: data[name] for name in _VIOLATION_FIELDS})


@dataclass
class ProgramResult:
    """All violations found for one test program."""

    seed: int
    violations: Dict[str, List[Violation]] = field(default_factory=dict)
    #: level -> ids of injected defects that fired during that compile
    #: (first-fire order) — the compile-time ground truth that lets
    #: ``repro-triage/1`` summaries be built from a stored campaign
    #: without recompiling anything.
    fired: Dict[str, List[str]] = field(default_factory=dict)

    def unique_keys(self) -> Dict[ViolationKey, Set[str]]:
        """Map each unique violation to the levels it reproduces at."""
        out: Dict[ViolationKey, Set[str]] = {}
        for level, violations in self.violations.items():
            for violation in violations:
                out.setdefault(violation.key(), set()).add(level)
        return out

    def conjectures_violated(self) -> Set[str]:
        return {key[0] for key in self.unique_keys()}

    def fired_defects(self, level: Optional[str] = None) -> List[str]:
        """Defect ids that fired — for one level, or all levels merged
        (sorted, deduplicated) when ``level`` is None."""
        if level is not None:
            return list(self.fired.get(level, []))
        merged: Set[str] = set()
        for ids in self.fired.values():
            merged.update(ids)
        return sorted(merged)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "seed": self.seed,
            "violations": {
                level: [_violation_to_dict(v) for v in violations]
                for level, violations in self.violations.items()
            },
        }
        if self.fired:
            data["fired"] = {level: list(ids)
                             for level, ids in self.fired.items()}
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ProgramResult":
        try:
            return cls(
                seed=data["seed"],
                violations={
                    level: [_violation_from_dict(v) for v in violations]
                    for level, violations in data["violations"].items()
                },
                fired={level: list(ids)
                       for level, ids in data.get("fired", {}).items()},
            )
        except KeyError as error:
            raise missing_field_error(CAMPAIGN_SCHEMA, error) from None


@dataclass
class CampaignResult:
    """Aggregated campaign statistics."""

    family: str
    version: str
    levels: List[str]
    pool_size: int = 0
    programs: List[ProgramResult] = field(default_factory=list)
    #: Contained per-(seed, cell) failures (see repro.faults) — empty
    #: on a clean run, and omitted from the serialized artifact when
    #: empty so pre-failure documents round-trip byte-identically.
    failures: List[FailureRecord] = field(default_factory=list)

    # -- Table 1 -----------------------------------------------------------

    def count(self, level: str, conjecture: str) -> int:
        total = 0
        for result in self.programs:
            total += sum(1 for v in result.violations.get(level, ())
                         if v.conjecture == conjecture)
        return total

    def unique_count(self, conjecture: str) -> int:
        keys = set()
        for result in self.programs:
            keys.update((result.seed, k)
                        for k in result.unique_keys()
                        if k[0] == conjecture)
        return len(keys)

    def programs_without_violations(self, conjecture: str) -> int:
        return sum(1 for r in self.programs
                   if conjecture not in r.conjectures_violated())

    def table1(self) -> Dict[str, Dict[str, int]]:
        """{level: {conjecture: count}} plus a "unique" pseudo-level."""
        table = {level: {c: self.count(level, c) for c in CONJECTURES}
                 for level in self.levels}
        table["unique"] = {c: self.unique_count(c) for c in CONJECTURES}
        return table

    # -- Figures 2/3 ---------------------------------------------------------

    def venn(self, exclude: Sequence[str] = ("Oz",),
             conjecture: Optional[str] = None
             ) -> Dict[FrozenSet[str], int]:
        """Counts of unique violations per exact level combination
        (the paper plots these cumulatively over conjectures and leaves
        -Oz out of the diagrams)."""
        regions: Dict[FrozenSet[str], int] = {}
        for result in self.programs:
            for key, levels in result.unique_keys().items():
                if conjecture is not None and key[0] != conjecture:
                    continue
                visible = frozenset(l for l in levels
                                    if l not in exclude)
                if not visible:
                    continue
                regions[visible] = regions.get(visible, 0) + 1
        return regions

    def only_at(self, level: str,
                conjecture: Optional[str] = None) -> int:
        """Unique violations occurring at exactly one level."""
        return self.venn(exclude=(), conjecture=conjecture).get(
            frozenset([level]), 0)

    # -- Figure 4 -------------------------------------------------------------

    def grid_row(self) -> List[int]:
        """#conjectures violated per program, in seed order."""
        return [len(r.conjectures_violated()) for r in self.programs]

    # -- merging ---------------------------------------------------------------

    def merge(self, other: "CampaignResult") -> "CampaignResult":
        """Combine two shard results into one campaign result.

        Associative and commutative over shards with disjoint seed
        ranges (overlapping ranges would double-count and are rejected):
        program order is renormalized by seed, so any merge tree over
        any shard ordering yields the same value — and the same
        ``table1()``/``venn()``/``grid_row()`` aggregates — as the serial
        run over the union of the ranges.
        """
        if (self.family, self.version) != (other.family, other.version):
            raise ValueError(
                f"cannot merge campaigns of different compilers: "
                f"{self.family}-{self.version} vs "
                f"{other.family}-{other.version}")
        if sorted(self.levels) != sorted(other.levels):
            # Order-insensitive on purpose: shards built with a
            # different level *ordering* hold the same per-level data
            # (violations are keyed by level name); only a different
            # level *set* is a real mismatch.  The merged result keeps
            # the left shard's display order.
            raise ValueError(
                f"cannot merge campaigns over different level sets: "
                f"{self.levels} vs {other.levels}")
        overlap = {p.seed for p in self.programs} & \
            {p.seed for p in other.programs}
        if overlap:
            raise ValueError(
                f"cannot merge campaigns with overlapping seed ranges "
                f"(would double-count): {sorted(overlap)[:5]}...")
        programs = sorted(self.programs + other.programs,
                          key=lambda result: result.seed)
        return CampaignResult(
            family=self.family, version=self.version,
            levels=list(self.levels),
            pool_size=self.pool_size + other.pool_size,
            programs=programs,
            failures=merge_failures(self.failures, other.failures))

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "schema": CAMPAIGN_SCHEMA,
            "family": self.family,
            "version": self.version,
            "levels": list(self.levels),
            "pool_size": self.pool_size,
            "programs": [p.to_dict() for p in self.programs],
        }
        if self.failures:
            data["failures"] = failures_to_dicts(self.failures)
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        """The ``repro-campaign/1`` artifact document (every field is
        specified in ``docs/ARTIFACTS.md``); render it with
        ``repro-report`` or :mod:`repro.report`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignResult":
        schema = data.get("schema")
        if schema != CAMPAIGN_SCHEMA:
            raise ValueError(
                f"not a campaign artifact: schema {schema!r} "
                f"(expected {CAMPAIGN_SCHEMA!r})")
        try:
            return cls(
                family=data["family"], version=data["version"],
                levels=list(data["levels"]), pool_size=data["pool_size"],
                programs=[ProgramResult.from_dict(p)
                          for p in data["programs"]],
                failures=failures_from_dicts(data.get("failures", ())))
        except KeyError as error:
            raise missing_field_error(CAMPAIGN_SCHEMA, error) from None

    @classmethod
    def from_json(cls, text: str) -> "CampaignResult":
        """Load a stored ``repro-campaign/1`` artifact (see
        ``docs/ARTIFACTS.md``; :func:`repro.report.load_artifact`
        dispatches over every schema)."""
        return cls.from_dict(json.loads(text))

    # -- reporting ---------------------------------------------------------------
    # The rendering logic lives in repro.report; these shims survive one
    # deprecation cycle for callers of the original methods.

    def format_table1(self) -> str:
        """Deprecated: use :func:`repro.report.format_table1_text` (or
        any renderer over :func:`repro.report.table1`)."""
        import warnings

        from ..report.tables import format_table1_text
        warnings.warn(
            "CampaignResult.format_table1 is deprecated; use "
            "repro.report.format_table1_text (or render "
            "repro.report.table1 with any renderer)",
            DeprecationWarning, stacklevel=2)
        return format_table1_text(self)

    def format_venn(self, exclude: Sequence[str] = ("Oz",)) -> str:
        """Deprecated: use :func:`repro.report.format_venn_text` (or
        any renderer over :func:`repro.report.venn_table`)."""
        import warnings

        from ..report.figures import format_venn_text
        warnings.warn(
            "CampaignResult.format_venn is deprecated; use "
            "repro.report.format_venn_text (or render "
            "repro.report.venn_table with any renderer)",
            DeprecationWarning, stacklevel=2)
        return format_venn_text(self, exclude=exclude)


def merge_results(results: Iterable[CampaignResult]) -> CampaignResult:
    """Fold any number of shard results into one (at least one needed;
    a single shard is returned unchanged — see :func:`fold_results`)."""
    return fold_results(results)


def test_program_full(program: Program, compiler: Compiler,
                      debugger: Debugger,
                      levels: Optional[Sequence[str]] = None,
                      facts: Optional[SourceFacts] = None,
                      probe: Optional[Callable[[str], None]] = None
                      ) -> Tuple[Dict[str, List[Violation]],
                                 Dict[str, List[str]]]:
    """Check one program at each level.

    Returns ``(violations per level, fired defect ids per level)`` —
    the second mapping is the compile-time ground truth recorded on
    :class:`ProgramResult` (levels whose compile fired nothing are
    omitted).  ``probe`` is the containment boundary's stage hook
    (see :class:`repro.faults.FailureBoundary`); callers outside a
    boundary leave it None.
    """
    if facts is None:
        facts = SourceFacts(program)
    if levels is None:
        levels = [l for l in compiler.levels if l != "O0"]
    out: Dict[str, List[Violation]] = {}
    fired: Dict[str, List[str]] = {}
    for level in levels:
        if probe is not None:
            probe("compile")
        compilation = compiler.compile(program, level)
        if probe is not None:
            probe("trace")
        trace = debugger.trace(compilation.exe)
        out[level] = check_all(facts, trace)
        fired_ids = compilation.fired_defects()
        if fired_ids:
            fired[level] = fired_ids
    return out, fired


def test_program(program: Program, compiler: Compiler,
                 debugger: Debugger,
                 levels: Optional[Sequence[str]] = None,
                 facts: Optional[SourceFacts] = None
                 ) -> Dict[str, List[Violation]]:
    """Check one program at each level; returns violations per level."""
    return test_program_full(program, compiler, debugger, levels,
                             facts)[0]


def persist_failure(store, run: int, record: FailureRecord) -> None:
    """Best-effort write of a quarantine record to the store so resume
    knows which pairs to retry.  Store errors are swallowed on purpose:
    the record is already in the artifact, and a store too broken to
    record failures must not break graceful degradation."""
    try:
        store.put_failure(run, record.seed, record.item,
                          record.to_dict())
    except Exception:
        return


def stored_failure(store, run: int, seed: int, item: str = ""
                   ) -> Optional[FailureRecord]:
    """The quarantine record a previous run left for this pair, if
    any (best-effort, like :func:`persist_failure`)."""
    try:
        payload = store.get_failure(run, seed, item)
    except Exception:
        return None
    if payload is None:
        return None
    try:
        return FailureRecord.from_dict(payload)
    except ValueError:
        return None


def run_campaign_seeds(compiler: Compiler, debugger: Debugger,
                       seeds: SeedSpec,
                       levels: Optional[Sequence[str]] = None,
                       store=None,
                       faults: Optional[FaultPlan] = None,
                       max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                       crash_base: int = 0,
                       escalate_crashes: bool = False,
                       retry_failed: bool = True,
                       contain: bool = True) -> CampaignResult:
    """Campaign over an explicit seed range (one shard's worth).

    With a :class:`~repro.store.CampaignStore`, the run is *resumable*:
    every already-evaluated ``(seed, cell)`` pair is loaded back instead
    of recompiled (the cell is ``(family, version, debugger, level
    set)``), and every freshly evaluated pair is written through — so an
    interrupted or extended campaign only pays for the delta, and the
    returned result is bit-identical to an uninterrupted serial run.

    Evaluation runs inside a :class:`~repro.faults.FailureBoundary`:
    an exception anywhere in generate/compile/trace quarantines that
    seed as a structured failure record instead of aborting the
    campaign (``contain=False`` restores the raise-through behaviour —
    the benchmark's fault-free baseline).  ``faults`` threads a
    deterministic :class:`~repro.faults.FaultPlan` into the boundary
    for chaos runs; ``crash_base``/``escalate_crashes`` are the
    parallel supervisor's crash-accounting knobs
    (:mod:`repro.pipeline.parallel`).  Quarantined pairs are recorded
    in the store and retried on the next resumed run unless
    ``retry_failed=False``.  ``KeyboardInterrupt`` flushes completed
    work to the store before propagating.
    """
    if levels is None:
        levels = [l for l in compiler.levels if l != "O0"]
    result = CampaignResult(family=compiler.family,
                            version=compiler.version,
                            levels=list(levels), pool_size=seeds.count)
    run = None
    if store is not None:
        run = store.run_id(CAMPAIGN_SCHEMA, compiler.family,
                           compiler.version, levels,
                           debugger=debugger.name)
    cell = f"{compiler.family}-{compiler.version}/{debugger.name}"
    boundary = FailureBoundary(cell, faults=faults,
                               max_attempts=max_attempts,
                               crash_base=crash_base,
                               escalate_crashes=escalate_crashes)
    try:
        for seed in seeds.seeds():
            if run is not None:
                stored = store.get_result(run, seed)
                if stored is not None:
                    result.programs.append(
                        ProgramResult.from_dict(stored))
                    continue
                if not retry_failed:
                    prior = stored_failure(store, run, seed)
                    if prior is not None:
                        result.failures.append(prior)
                        continue
            if not contain:
                program = generate_validated(seed)
                violations, fired = test_program_full(
                    program, compiler, debugger, levels)
            else:
                def compute(probe, seed=seed):
                    probe("generate")
                    program = generate_validated(seed)
                    violations, fired = test_program_full(
                        program, compiler, debugger, levels,
                        probe=probe)
                    return program, violations, fired
                value, record = boundary.evaluate(seed, compute)
                if value is None:
                    if run is not None:
                        persist_failure(store, run, record)
                    continue
                program, violations, fired = value
            program_result = ProgramResult(
                seed=seed, violations=violations, fired=fired)
            result.programs.append(program_result)
            if run is not None:
                def write(program=program,
                          program_result=program_result, seed=seed):
                    store.add_program(seed, print_program(program))
                    store.put_result(run, seed,
                                     program_result.to_dict())
                if contain:
                    if boundary.store_write(seed, write):
                        store.clear_failure(run, seed, "")
                else:
                    write()
    except KeyboardInterrupt:
        if store is not None:
            store.checkpoint()
        raise
    result.failures = merge_failures(result.failures,
                                     boundary.failures)
    return result


def run_campaign(compiler: Compiler, debugger: Debugger,
                 pool_size: int = 100, seed_base: int = 0,
                 levels: Optional[Sequence[str]] = None,
                 store=None,
                 faults: Optional[FaultPlan] = None,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 retry_failed: bool = True) -> CampaignResult:
    """Generate ``pool_size`` programs and test them all (resumable and
    incremental when ``store`` is given, fault-contained always — see
    :func:`run_campaign_seeds`)."""
    return run_campaign_seeds(
        compiler, debugger, SeedSpec(base=seed_base, count=pool_size),
        levels=levels, store=store, faults=faults,
        max_attempts=max_attempts, retry_failed=retry_failed)


def run_campaign_on_programs(programs: Sequence[Program],
                             compiler: Compiler, debugger: Debugger,
                             levels: Optional[Sequence[str]] = None
                             ) -> CampaignResult:
    """Campaign over a fixed, shared program pool (used by the regression
    study so every version sees identical programs, Section 5.4)."""
    if levels is None:
        levels = [l for l in compiler.levels if l != "O0"]
    result = CampaignResult(family=compiler.family,
                            version=compiler.version,
                            levels=list(levels),
                            pool_size=len(programs))
    for index, program in enumerate(programs):
        violations, fired = test_program_full(program, compiler,
                                              debugger, levels)
        result.programs.append(
            ProgramResult(seed=index, violations=violations, fired=fired))
    return result
