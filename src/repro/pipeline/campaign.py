"""End-to-end testing campaigns (Section 5.1/5.2 drivers).

``run_campaign`` reproduces the paper's core experiment: generate N
programs, compile each at every optimization level of a compiler, trace in
the family's native debugger, check the three conjectures, and aggregate:

* per-level violation counts per conjecture (Table 1's body);
* unique violations (deduplicated across levels — Table 1's last row);
* the level-set membership of each unique violation (Figures 2/3's Venn
  regions);
* per-program violated-conjecture counts (Figure 4's grid rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..analysis.source_facts import SourceFacts
from ..compilers.compiler import Compiler
from ..conjectures.base import CONJECTURES, Violation, check_all
from ..debugger.base import Debugger
from ..fuzz.generator import generate_validated
from ..lang.ast_nodes import Program

#: A unique violation identity: (conjecture, line, variable).
ViolationKey = Tuple[str, int, str]


@dataclass
class ProgramResult:
    """All violations found for one test program."""

    seed: int
    violations: Dict[str, List[Violation]] = field(default_factory=dict)

    def unique_keys(self) -> Dict[ViolationKey, Set[str]]:
        """Map each unique violation to the levels it reproduces at."""
        out: Dict[ViolationKey, Set[str]] = {}
        for level, violations in self.violations.items():
            for violation in violations:
                out.setdefault(violation.key(), set()).add(level)
        return out

    def conjectures_violated(self) -> Set[str]:
        return {key[0] for key in self.unique_keys()}


@dataclass
class CampaignResult:
    """Aggregated campaign statistics."""

    family: str
    version: str
    levels: List[str]
    pool_size: int = 0
    programs: List[ProgramResult] = field(default_factory=list)

    # -- Table 1 -----------------------------------------------------------

    def count(self, level: str, conjecture: str) -> int:
        total = 0
        for result in self.programs:
            total += sum(1 for v in result.violations.get(level, ())
                         if v.conjecture == conjecture)
        return total

    def unique_count(self, conjecture: str) -> int:
        keys = set()
        for result in self.programs:
            keys.update((result.seed, k)
                        for k in result.unique_keys()
                        if k[0] == conjecture)
        return len(keys)

    def programs_without_violations(self, conjecture: str) -> int:
        return sum(1 for r in self.programs
                   if conjecture not in r.conjectures_violated())

    def table1(self) -> Dict[str, Dict[str, int]]:
        """{level: {conjecture: count}} plus a "unique" pseudo-level."""
        table = {level: {c: self.count(level, c) for c in CONJECTURES}
                 for level in self.levels}
        table["unique"] = {c: self.unique_count(c) for c in CONJECTURES}
        return table

    # -- Figures 2/3 ---------------------------------------------------------

    def venn(self, exclude: Sequence[str] = ("Oz",),
             conjecture: Optional[str] = None
             ) -> Dict[FrozenSet[str], int]:
        """Counts of unique violations per exact level combination
        (the paper plots these cumulatively over conjectures and leaves
        -Oz out of the diagrams)."""
        regions: Dict[FrozenSet[str], int] = {}
        for result in self.programs:
            for key, levels in result.unique_keys().items():
                if conjecture is not None and key[0] != conjecture:
                    continue
                visible = frozenset(l for l in levels
                                    if l not in exclude)
                if not visible:
                    continue
                regions[visible] = regions.get(visible, 0) + 1
        return regions

    def only_at(self, level: str,
                conjecture: Optional[str] = None) -> int:
        """Unique violations occurring at exactly one level."""
        return self.venn(exclude=(), conjecture=conjecture).get(
            frozenset([level]), 0)

    # -- Figure 4 -------------------------------------------------------------

    def grid_row(self) -> List[int]:
        """#conjectures violated per program, in seed order."""
        return [len(r.conjectures_violated()) for r in self.programs]


def test_program(program: Program, compiler: Compiler,
                 debugger: Debugger,
                 levels: Optional[Sequence[str]] = None,
                 facts: Optional[SourceFacts] = None
                 ) -> Dict[str, List[Violation]]:
    """Check one program at each level; returns violations per level."""
    if facts is None:
        facts = SourceFacts(program)
    if levels is None:
        levels = [l for l in compiler.levels if l != "O0"]
    out: Dict[str, List[Violation]] = {}
    for level in levels:
        compilation = compiler.compile(program, level)
        trace = debugger.trace(compilation.exe)
        out[level] = check_all(facts, trace)
    return out


def run_campaign(compiler: Compiler, debugger: Debugger,
                 pool_size: int = 100, seed_base: int = 0,
                 levels: Optional[Sequence[str]] = None) -> CampaignResult:
    """Generate ``pool_size`` programs and test them all."""
    if levels is None:
        levels = [l for l in compiler.levels if l != "O0"]
    result = CampaignResult(family=compiler.family,
                            version=compiler.version,
                            levels=list(levels), pool_size=pool_size)
    for index in range(pool_size):
        seed = seed_base + index
        program = generate_validated(seed)
        violations = test_program(program, compiler, debugger, levels)
        result.programs.append(
            ProgramResult(seed=seed, violations=violations))
    return result


def run_campaign_on_programs(programs: Sequence[Program],
                             compiler: Compiler, debugger: Debugger,
                             levels: Optional[Sequence[str]] = None
                             ) -> CampaignResult:
    """Campaign over a fixed, shared program pool (used by the regression
    study so every version sees identical programs, Section 5.4)."""
    if levels is None:
        levels = [l for l in compiler.levels if l != "O0"]
    result = CampaignResult(family=compiler.family,
                            version=compiler.version,
                            levels=list(levels),
                            pool_size=len(programs))
    for index, program in enumerate(programs):
        violations = test_program(program, compiler, debugger, levels)
        result.programs.append(
            ProgramResult(seed=index, violations=violations))
    return result
