"""Deterministic fault injection — seeded chaos for campaign drivers.

A :class:`FaultPlan` is a frozen, picklable schedule of faults keyed by
``(kind, stage, seed)``.  Drivers thread the plan into their containment
boundary (:mod:`repro.faults.boundary`); at each stage entry the
boundary asks the plan whether a fault is due, and the plan answers the
same way in every process — decisions are pure functions of the plan
seed, so a chaos run reproduces bit-for-bit across serial/parallel
drivers, spawn/fork start methods, and CI reruns.

Four fault kinds:

``error``
    A transient exception (:class:`InjectedError`) at a named pipeline
    stage (``generate``/``compile``/``trace``/``verify``/``reduce``).
    ``count`` bounds how many evaluation attempts it poisons; a retrying
    boundary recovers once the count is spent.
``hang``
    A hung seed.  :class:`InjectedHang` subclasses the interpreter's
    :class:`~repro.ir.interp.TimeoutError_`, so it rides exactly the
    fuel-exhaustion path a genuinely diverging program takes through
    ``target/vm.py`` — containment cannot tell them apart, which is the
    point.  Timeouts are deterministic, so boundaries quarantine them
    immediately instead of burning retries.
``crash``
    Worker death.  In a real worker process a ``hard`` crash calls
    ``os._exit(3)`` (the pool sees ``BrokenProcessPool``); a soft crash
    raises :class:`InjectedCrash` through the shard entry so the
    supervisor respawns with precise accounting.  ``count`` is the
    number of *incarnations* the fault stays live for: the serial
    driver counts per-seed simulated respawns, a parallel shard counts
    its own deaths (``crash_base``), and both converge on the same
    recovered-crash records via :meth:`FaultPlan.prior_crashes`.
``store``
    A write failure on the store write-through of a finished result.
``service``
    A service-layer fault keyed by *request ordinal* instead of seed:
    ``accept`` drops the connection before a response is written,
    ``respond`` truncates the response mid-stream, and ``kill`` asks
    the process to die (honoured only by subprocess harnesses — an
    in-process service treats it as a hard error).  Clients retry
    against the idempotent service, so chaos runs still converge on
    bit-identical artifacts.

Each spec targets explicit ``seeds`` or a deterministic ``rate`` (a
seed participates iff ``hash(plan_seed, kind, stage, seed) < rate``).
Plans serialize as ``repro-faults/1`` JSON for the ``--faults`` CLI
flag and the CI chaos job.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from ..ir.interp import TimeoutError_
from ..ir.ops import UBError

FAULTPLAN_SCHEMA = "repro-faults/1"

#: ``count`` value meaning the fault never recovers.
PERSISTENT = -1

FAULT_KINDS = ("error", "hang", "crash", "store", "service")

#: Stages an ``error`` spec may target (hangs always hit ``trace``,
#: store faults always hit ``store``).
ERROR_STAGES = ("generate", "compile", "trace", "verify", "reduce")

#: Stages a ``service`` spec may target.  Service faults key on the
#: request ordinal (0-based arrival index), not a campaign seed.
SERVICE_STAGES = ("accept", "respond", "kill")


class InjectedFault(Exception):
    """Marker base for every fault this module injects."""


class InjectedError(InjectedFault, RuntimeError):
    """A transient stage exception from an ``error`` spec."""


class InjectedCrash(InjectedFault, RuntimeError):
    """A (soft) worker death from a ``crash`` spec — escapes the shard
    entry so the supervisor treats the worker as lost."""


class InjectedHang(TimeoutError_, InjectedFault):
    """A hung seed: fuel exhaustion injected on the interpreter's own
    :class:`~repro.ir.interp.TimeoutError_` path."""

    def __init__(self, detail: str = "(injected)"):
        # TimeoutError_ hard-codes its message; keep its shape but say
        # which injection raised it.
        UBError.__init__(self, "non-termination", detail)


@dataclass(frozen=True)
class FaultSpec:
    """One fault schedule entry (see module docstring for semantics)."""

    kind: str
    stage: str = ""
    seeds: Tuple[int, ...] = ()
    rate: float = 0.0
    count: int = 1
    hard: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} "
                f"(known: {', '.join(FAULT_KINDS)})")
        if self.kind == "error":
            if self.stage not in ERROR_STAGES:
                raise ValueError(
                    f"error fault needs a stage in "
                    f"{'/'.join(ERROR_STAGES)}, got {self.stage!r}")
        elif self.kind == "service":
            if self.stage not in SERVICE_STAGES:
                raise ValueError(
                    f"service fault needs a stage in "
                    f"{'/'.join(SERVICE_STAGES)}, got {self.stage!r}")
        elif self.stage:
            raise ValueError(
                f"{self.kind} faults have a fixed stage; drop "
                f"stage={self.stage!r}")
        if self.count != PERSISTENT and self.count < 1:
            raise ValueError(
                f"count must be >= 1 or PERSISTENT (-1), "
                f"got {self.count}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.hard and self.kind != "crash":
            raise ValueError("hard only applies to crash faults")
        object.__setattr__(self, "seeds",
                           tuple(sorted(set(self.seeds))))

    def live(self, attempt: int) -> bool:
        """Does the fault still fire on the ``attempt``-th retry
        (0-based: attempt 0 is the first try)?"""
        return self.count == PERSISTENT or attempt < self.count

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "stage": self.stage,
                "seeds": list(self.seeds), "rate": self.rate,
                "count": self.count, "hard": self.hard}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        try:
            kind = data["kind"]
        except KeyError:
            raise ValueError("fault spec is missing 'kind'") from None
        return cls(kind=kind, stage=data.get("stage", ""),
                   seeds=tuple(data.get("seeds", ())),
                   rate=data.get("rate", 0.0),
                   count=data.get("count", 1),
                   hard=data.get("hard", False))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable fault schedule (empty plan == no faults)."""

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    # -- deterministic decisions --------------------------------------------

    def chance(self, kind: str, stage: str, seed: int) -> float:
        """The plan's stable uniform draw in ``[0, 1)`` for one
        ``(kind, stage, seed)`` triple — independent of process,
        platform and evaluation order."""
        token = f"{self.seed}:{kind}:{stage}:{seed}"
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2 ** 64

    def _applies(self, spec: FaultSpec, seed: int) -> bool:
        if spec.seeds:
            return seed in spec.seeds
        return (spec.rate > 0.0 and
                self.chance(spec.kind, spec.stage, seed) < spec.rate)

    def check(self, stage: str, seed: int, attempt: int = 0) -> None:
        """Raise the fault due at ``stage`` for ``seed`` on its
        ``attempt``-th evaluation, if any.  Called by the containment
        boundary's stage probe; a no-op for untargeted pairs."""
        for spec in self.specs:
            if spec.kind == "error" and spec.stage == stage:
                if self._applies(spec, seed) and spec.live(attempt):
                    raise InjectedError(
                        f"injected {stage} fault "
                        f"(seed {seed}, attempt {attempt + 1})")
            elif spec.kind == "hang" and stage == "trace":
                if self._applies(spec, seed) and spec.live(attempt):
                    raise InjectedHang(
                        f"(fuel exhaustion injected, seed {seed})")
            elif spec.kind == "store" and stage == "store":
                if self._applies(spec, seed) and spec.live(attempt):
                    raise InjectedError(
                        f"injected store write failure "
                        f"(seed {seed}, attempt {attempt + 1})")

    def service_fault(self, stage: str, ordinal: int
                      ) -> Optional[FaultSpec]:
        """The service spec due at ``stage`` for the ``ordinal``-th
        request, or None.  ``seeds`` on a service spec name request
        ordinals; ``count`` bounds how many times the same ordinal may
        fault across client retries (the ordinal is sticky per logical
        request, so a retried submission stops faulting once spent —
        callers pass the retry index as ``attempt`` via :meth:`check`
        semantics by re-asking with the same ordinal and tracking
        attempts themselves)."""
        if stage not in SERVICE_STAGES:
            raise ValueError(
                f"unknown service stage {stage!r} "
                f"(known: {'/'.join(SERVICE_STAGES)})")
        for spec in self.specs:
            if (spec.kind == "service" and spec.stage == stage
                    and self._applies(spec, ordinal)):
                return spec
        return None

    def crash_due(self, seed: int, incarnation: int
                  ) -> Optional[FaultSpec]:
        """The crash spec that kills the worker evaluating ``seed`` in
        its ``incarnation``-th life, or None.  ``incarnation`` is the
        per-seed simulated-respawn count in the serial drivers and the
        shard's death count (``crash_base``) in parallel workers."""
        for spec in self.specs:
            if (spec.kind == "crash" and self._applies(spec, seed)
                    and spec.live(incarnation)):
                return spec
        return None

    def prior_crashes(self, seed: int, incarnations: int) -> int:
        """How many crashes ``seed`` must have gone through to be
        evaluable in its ``incarnations``-th life.  Lets a respawned
        worker reconstruct the recovered-crash record the serial driver
        counts live, so both emit bit-identical failure accounting."""
        prior = 0
        for spec in self.specs:
            if spec.kind == "crash" and self._applies(spec, seed):
                if spec.count == PERSISTENT:
                    continue
                prior = max(prior, min(spec.count, incarnations))
        return prior

    def crashes(self) -> bool:
        """Does the plan inject any crash at all (supervision hint)?"""
        return any(spec.kind == "crash" for spec in self.specs)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {"schema": FAULTPLAN_SCHEMA, "seed": self.seed,
                "faults": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        schema = data.get("schema")
        if schema != FAULTPLAN_SCHEMA:
            raise ValueError(
                f"not a fault plan: schema {schema!r} "
                f"(expected {FAULTPLAN_SCHEMA!r})")
        return cls(seed=data.get("seed", 0),
                   specs=tuple(FaultSpec.from_dict(spec)
                               for spec in data.get("faults", ())))

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent,
                          sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read())
