"""Fault tolerance: deterministic injection, containment, accounting.

The three layers, bottom up:

- :mod:`repro.faults.records` — :class:`FailureRecord`, the structured
  unit of graceful degradation, plus the exact ``merge_failures`` fold
  every artifact ``merge()`` applies.
- :mod:`repro.faults.plan` — :class:`FaultPlan`, a seeded, picklable
  chaos schedule (``repro-faults/1`` JSON) injecting crashes, hangs,
  transient stage errors, and store write failures deterministically.
- :mod:`repro.faults.boundary` — :class:`FailureBoundary`, the
  per-(seed, cell) containment wrapper all four campaign drivers use.

See ``docs/ARCHITECTURE.md`` ("repro.faults") and the README's
"Fault tolerance" section for the end-to-end story.
"""

from .boundary import (
    DEFAULT_MAX_ATTEMPTS, FailureBoundary, crash_record,
    in_worker_process,
)
from .plan import (
    ERROR_STAGES, FAULT_KINDS, FAULTPLAN_SCHEMA, PERSISTENT,
    SERVICE_STAGES, FaultPlan, FaultSpec, InjectedCrash, InjectedError,
    InjectedFault, InjectedHang,
)
from .shutdown import install_sigterm_interrupt, run_interruptible
from .records import (
    FAILURE_KINDS, FAILURE_STAGES, FAILURE_STATUSES, FailureRecord,
    failure_census, failures_from_dicts, failures_to_dicts,
    merge_failures, record_failure,
)

__all__ = [
    "DEFAULT_MAX_ATTEMPTS", "ERROR_STAGES", "FAILURE_KINDS",
    "FAILURE_STAGES", "FAILURE_STATUSES", "FAULTPLAN_SCHEMA",
    "FAULT_KINDS", "FailureBoundary", "FailureRecord", "FaultPlan",
    "FaultSpec", "InjectedCrash", "InjectedError", "InjectedFault",
    "InjectedHang", "PERSISTENT", "SERVICE_STAGES", "crash_record",
    "failure_census", "failures_from_dicts", "failures_to_dicts",
    "in_worker_process", "install_sigterm_interrupt", "merge_failures",
    "record_failure", "run_interruptible",
]
