"""The containment boundary drivers wrap around per-(seed, cell) work.

:class:`FailureBoundary` runs one evaluation thunk and guarantees the
driver an answer: either the thunk's value, or a structured
:class:`~repro.faults.records.FailureRecord` explaining why the pair was
given up on.  Exceptions never escape to abort the campaign (the two
deliberate exits: ``KeyboardInterrupt`` always propagates so drivers can
flush, and :class:`~repro.faults.plan.InjectedCrash` propagates when the
boundary runs inside a worker shard with ``escalate_crashes=True`` —
worker death is the *supervisor's* problem, see
:mod:`repro.pipeline.parallel`).

Retry policy:

- transient exceptions retry up to ``max_attempts`` total tries, then
  quarantine;
- :class:`~repro.ir.interp.TimeoutError_` (real fuel exhaustion or an
  injected hang — indistinguishable by design) quarantines immediately:
  a hang is a deterministic property of the program, so retrying it
  only burns fuel;
- injected worker crashes are simulated in place by the serial drivers
  (the boundary plays supervisor: bump the incarnation count and retry)
  and escalated in parallel workers.

The thunk receives a ``probe(stage)`` callable and must call it at each
pipeline-stage entry.  The probe does double duty: it tags the stage
real exceptions get attributed to, and it is the injection point where
a :class:`~repro.faults.plan.FaultPlan` raises scheduled faults.  With
no plan the probe costs one attribute store — the benchmark
``benchmarks/test_faults_overhead.py`` pins that overhead.

Attempt accounting is written to converge between drivers: transient
attempts are counted locally per evaluation, and crash incarnations are
counted per seed (serial) or reconstructed from the shard's death count
via :meth:`~repro.faults.plan.FaultPlan.prior_crashes` (parallel), so a
storeless serial run and a sharded run emit bit-identical records for
any recovering fault plan.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Dict, List, Optional, Tuple

from ..ir.interp import TimeoutError_
from .plan import FaultPlan, InjectedCrash
from .records import FailureRecord, record_failure

#: Default bound on total tries (first try + retries) per pair.
DEFAULT_MAX_ATTEMPTS = 3


def crash_record(seed: int, cell: str, attempts: int, status: str,
                 item: str = "") -> FailureRecord:
    """The synthesized record for injected worker death.  Built from
    plan data alone (no live traceback — the crash happened in a
    previous incarnation), so the serial simulation and a respawned
    parallel worker reconstruct the identical record."""
    return FailureRecord(
        seed=seed, cell=cell, item=item, stage="worker", kind="crash",
        error="InjectedCrash",
        detail="worker death injected by fault plan", digest="",
        attempts=attempts, status=status)


def in_worker_process() -> bool:
    """Are we in a multiprocessing child (where a hard crash may
    genuinely ``os._exit`` without killing the driver)?"""
    return multiprocessing.parent_process() is not None


class FailureBoundary:
    """Failure containment for one driver run (see module docstring)."""

    def __init__(self, cell: str, faults: Optional[FaultPlan] = None,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 crash_base: int = 0,
                 escalate_crashes: bool = False) -> None:
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}")
        self.cell = cell
        self.plan = faults if faults is not None else FaultPlan()
        self.max_attempts = max_attempts
        #: Shard death count before this boundary came up (parallel
        #: workers); serial drivers leave it 0 and count per seed.
        self.crash_base = crash_base
        self.escalate_crashes = escalate_crashes
        #: Every record this boundary produced, in evaluation order.
        self.failures: List[FailureRecord] = []
        self._crash_counts: Dict[Tuple[int, str], int] = {}
        self._stage = "generate"

    # -- the per-pair wrapper ------------------------------------------------

    def evaluate(self, seed: int,
                 thunk: Callable[[Callable[[str], None]], object],
                 item: str = "", cell: Optional[str] = None,
                 initial_stage: str = "generate"):
        """Run ``thunk(probe)`` under containment.

        Returns ``(value, record)``: on success ``value`` is the
        thunk's result and ``record`` is ``None`` or a ``recovered``
        record (already appended to :attr:`failures`); on quarantine
        ``value`` is ``None`` and ``record`` is the quarantined
        record.
        """
        cell = self.cell if cell is None else cell
        key = (seed, item)
        attempt = 0
        last_error: Optional[BaseException] = None
        last_stage = initial_stage
        while True:
            crashes = self._pre_crash(seed, key, attempt)
            if crashes is None:  # crash budget exhausted: quarantined
                record = crash_record(
                    seed, cell, attempts=self.max_attempts,
                    status="quarantined", item=item)
                self.failures.append(record)
                return None, record
            self._stage = initial_stage
            try:
                value = thunk(self._probe(seed, attempt))
            except KeyboardInterrupt:
                raise
            except InjectedCrash:
                raise  # escalate mode only: the supervisor owns this
            except TimeoutError_ as error:
                record = record_failure(
                    seed, cell, self._stage, error,
                    attempts=attempt + crashes + 1,
                    status="quarantined", item=item, kind="timeout")
                self.failures.append(record)
                return None, record
            except Exception as error:
                attempt += 1
                last_error, last_stage = error, self._stage
                if attempt + crashes >= self.max_attempts:
                    record = record_failure(
                        seed, cell, self._stage, error,
                        attempts=attempt + crashes,
                        status="quarantined", item=item)
                    self.failures.append(record)
                    return None, record
                continue
            total = attempt + crashes + 1
            if total == 1:
                return value, None
            if crashes:
                record = crash_record(seed, cell, attempts=total,
                                      status="recovered", item=item)
            else:
                record = record_failure(
                    seed, cell, last_stage, last_error, attempts=total,
                    status="recovered", item=item)
            self.failures.append(record)
            return value, record

    def store_write(self, seed: int, thunk: Callable[[], object],
                    item: str = "", cell: Optional[str] = None) -> bool:
        """Guard the store write-through of a finished result.  Returns
        whether it persisted; a persistently failing store never
        discards the computed result — the driver keeps it in the
        artifact and a ``stage="store"`` record marks the gap (resume
        recomputes the pair)."""
        cell = self.cell if cell is None else cell
        attempt = 0
        last_error: Optional[BaseException] = None
        while True:
            try:
                if self.plan:
                    self.plan.check("store", seed, attempt)
                thunk()
            except KeyboardInterrupt:
                raise
            except Exception as error:
                attempt += 1
                last_error = error
                if attempt >= self.max_attempts:
                    self.failures.append(record_failure(
                        seed, cell, "store", error, attempts=attempt,
                        status="quarantined", item=item))
                    return False
                continue
            if attempt:
                self.failures.append(record_failure(
                    seed, cell, "store", last_error,
                    attempts=attempt + 1, status="recovered",
                    item=item))
            return True

    # -- internals -----------------------------------------------------------

    def _pre_crash(self, seed: int, key: Tuple[int, str],
                   attempt: int) -> Optional[int]:
        """Handle worker-death injection at evaluation entry.  Returns
        the number of crashes this pair has absorbed (for attempt
        accounting), or None when the crash budget quarantines it.
        In escalate mode a due crash leaves the boundary entirely —
        hard via ``os._exit`` (a real ``BrokenProcessPool`` for the
        supervisor), soft via :class:`InjectedCrash`."""
        if not self.plan:
            return 0
        if self.escalate_crashes:
            spec = self.plan.crash_due(seed, self.crash_base)
            if spec is not None:
                if spec.hard and in_worker_process():
                    os._exit(3)
                raise InjectedCrash(
                    f"injected worker crash (seed {seed})")
            return self.plan.prior_crashes(seed, self.crash_base)
        # Simulation path.  crash_base credits incarnations already spent
        # by a real worker (the rescue re-run of a shard whose worker
        # kept dying); a plain serial run starts from 0.
        base = self.plan.prior_crashes(seed, self.crash_base)
        while True:
            local = self._crash_counts.get(key, 0)
            if self.plan.crash_due(seed, self.crash_base + local) is None:
                return base + local
            local += 1
            self._crash_counts[key] = local
            if attempt + base + local >= self.max_attempts:
                return None

    def _probe(self, seed: int, attempt: int) -> Callable[[str], None]:
        plan = self.plan if self.plan else None

        def probe(stage: str) -> None:
            self._stage = stage
            if plan is not None:
                plan.check(stage, seed, attempt)
        return probe
