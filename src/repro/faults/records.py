"""Structured failure records — the unit of graceful degradation.

When a campaign driver's containment boundary gives up on a ``(seed,
cell)`` pair (or recovers it after retries), the disposition is recorded
as a :class:`FailureRecord` instead of aborting the run.  Records ride
on the four artifact schemas as an optional ``failures`` field
(backward-compatible: absent means empty), fold exactly under every
``merge()`` (:func:`merge_failures` — a sorted, deduplicated union, so
any merge tree over any shard ordering yields the same list), persist in
the campaign store next to the results they replace, and render as the
failure census behind ``repro-report failures``.

The **stage vocabulary** (:data:`FAILURE_STAGES`) names where in the
per-seed pipeline the failure happened; the **kind** classifies it:
``timeout`` for fuel/wall-budget exhaustion (anything riding the
:class:`~repro.ir.interp.TimeoutError_` path, injected hangs included),
``crash`` for worker death, ``error`` for everything else.  ``status``
says how it ended: ``quarantined`` (the pair produced no result and is
retried on the next resumed run) or ``recovered`` (retries succeeded;
the result is present and the record only carries the attempt
accounting).
"""

from __future__ import annotations

import hashlib
import traceback as traceback_module
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

#: Where in the per-seed pipeline a failure can happen.  ``worker`` is
#: the supervision layer's stage for shard-level death (the seed never
#: reached a per-stage boundary); ``store`` is the write-through of an
#: already-computed result.
FAILURE_STAGES = ("generate", "compile", "trace", "verify", "reduce",
                  "store", "worker")

#: How the failure is classified (see module docstring).
FAILURE_KINDS = ("error", "timeout", "crash")

#: How the containment attempt ended.
FAILURE_STATUSES = ("quarantined", "recovered")

#: Serialized field order (also the ``to_dict`` key set).
_RECORD_FIELDS = ("seed", "cell", "item", "stage", "kind", "error",
                  "detail", "digest", "attempts", "status")

_DETAIL_LIMIT = 160


@dataclass(frozen=True, order=True)
class FailureRecord:
    """One contained ``(seed, cell)`` failure (or recovery)."""

    seed: int
    #: The campaign cell, e.g. ``gcc-trunk/gdb-like`` (dynamic),
    #: ``gcc-trunk`` (verify), ``gcc-trunk/gdb-like/fast`` (reduction).
    cell: str
    #: Sub-seed identity when the containment unit is finer than a seed
    #: (a reduction witness ``level/conjecture/variable``); empty for
    #: whole-seed containment.  Also the store's failure-row key.
    item: str
    #: One of :data:`FAILURE_STAGES`.
    stage: str
    #: One of :data:`FAILURE_KINDS`.
    kind: str
    #: Exception type name (``TimeoutError_``, ``InjectedCrash``, ...).
    error: str
    #: First line of the exception message, truncated.
    detail: str
    #: Stable sha256[:12] of the traceback skeleton — groups identical
    #: failure sites across seeds without storing whole tracebacks.
    digest: str
    #: Total attempts spent on the pair (crash respawns included).
    attempts: int
    #: One of :data:`FAILURE_STATUSES`.
    status: str

    def key(self) -> Tuple[int, str, str]:
        """The containment-unit identity (what resume retries)."""
        return (self.seed, self.cell, self.item)

    def with_cell(self, cell: str) -> "FailureRecord":
        """The same record filed under another cell (the matrix driver
        fans a shared-frontend failure out to every affected cell)."""
        return replace(self, cell=cell)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in _RECORD_FIELDS}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FailureRecord":
        try:
            return cls(**{name: data[name] for name in _RECORD_FIELDS})
        except KeyError as error:
            raise ValueError(
                f"malformed failure record: missing field "
                f"{error.args[0]!r}") from None


def traceback_digest(error: BaseException) -> str:
    """sha256[:12] over the traceback's (file, line, function) frames —
    message-independent, so one defect site digests identically across
    seeds."""
    frames = traceback_module.extract_tb(error.__traceback__)
    skeleton = "\n".join(
        f"{frame.filename}:{frame.lineno}:{frame.name}"
        for frame in frames)
    skeleton += f"\n{type(error).__name__}"
    return hashlib.sha256(skeleton.encode("utf-8")).hexdigest()[:12]


def describe_error(error: BaseException) -> str:
    """First message line, truncated to a census-friendly width."""
    text = str(error).splitlines()[0] if str(error) else ""
    if len(text) > _DETAIL_LIMIT:
        text = text[:_DETAIL_LIMIT - 3] + "..."
    return text


def record_failure(seed: int, cell: str, stage: str,
                   error: BaseException, attempts: int,
                   status: str = "quarantined",
                   item: str = "", kind: Optional[str] = None
                   ) -> FailureRecord:
    """Build the structured record for one contained exception."""
    if kind is None:
        from ..ir.interp import TimeoutError_
        if isinstance(error, TimeoutError_):
            kind = "timeout"
        else:
            kind = "error"
    return FailureRecord(
        seed=seed, cell=cell, item=item, stage=stage, kind=kind,
        error=type(error).__name__, detail=describe_error(error),
        digest=traceback_digest(error), attempts=attempts,
        status=status)


def merge_failures(mine: Iterable[FailureRecord],
                   theirs: Iterable[FailureRecord]
                   ) -> List[FailureRecord]:
    """The exact fold every result ``merge()`` applies to its
    ``failures`` fields: a sorted, deduplicated union.  Associative and
    commutative, so shard merge trees agree with the serial run; a
    shard respawn re-deriving the identical record collapses to one."""
    return sorted(set(mine) | set(theirs))


def failures_to_dicts(failures: Iterable[FailureRecord]
                      ) -> List[Dict[str, object]]:
    """Serialize for an artifact's optional ``failures`` field (callers
    omit the field entirely when the list is empty)."""
    return [record.to_dict() for record in sorted(failures)]


def failures_from_dicts(data: Iterable[Dict[str, object]]
                        ) -> List[FailureRecord]:
    """Load an artifact's ``failures`` field (absent == empty: callers
    pass ``data.get("failures", ())``)."""
    return [FailureRecord.from_dict(payload) for payload in data]


def failure_census(failures: Iterable[FailureRecord]
                   ) -> Dict[Tuple[str, str, str], int]:
    """``(stage, kind, error) -> count`` summary of a failure list."""
    census: Dict[Tuple[str, str, str], int] = {}
    for record in failures:
        key = (record.stage, record.kind, record.error)
        census[key] = census.get(key, 0) + 1
    return census
