"""Graceful-shutdown parity: SIGTERM behaves like Ctrl-C.

Every campaign driver already flushes its store on
``KeyboardInterrupt`` — an interactive Ctrl-C checkpoints the in-flight
shard and resumes bit-identically.  A plain ``kill <pid>`` bypassed
that path entirely: Python's default SIGTERM disposition tears the
process down without unwinding the stack, losing whatever the driver
had not yet written through.  :func:`install_sigterm_interrupt` closes
the gap by rerouting SIGTERM onto the interrupt path the drivers
already handle, so supervisors (systemd, Kubernetes, the serve-smoke
CI job) get the same checkpoint-and-exit semantics as a human.

Signal handlers only fire in the main thread, and only the main thread
may install them; worker threads and spawn children call this as a
no-op and rely on their supervisor's drain instead.
"""

from __future__ import annotations

import signal
import sys
import threading
from typing import Callable, Optional, Sequence

__all__ = ["install_sigterm_interrupt", "run_interruptible"]

#: Exit status of an interrupted CLI: 128 + SIGINT, the shell
#: convention for death-by-interrupt.
INTERRUPTED_EXIT = 130

_DEFAULT_NOTE = ("interrupted: finished work was checkpointed to the "
                 "store; rerun with the same --store to resume")


def _raise_interrupt(signum: int, frame: object) -> None:
    raise KeyboardInterrupt


def install_sigterm_interrupt() -> bool:
    """Route SIGTERM onto the ``KeyboardInterrupt`` unwind path.

    Returns True when the handler was installed, False when it could
    not be (not the main thread, or the platform lacks SIGTERM) — the
    caller keeps working either way.
    """
    if threading.current_thread() is not threading.main_thread():
        return False
    term = getattr(signal, "SIGTERM", None)
    if term is None:  # pragma: no cover - all CI platforms have it
        return False
    try:
        signal.signal(term, _raise_interrupt)
    except (ValueError, OSError):  # pragma: no cover - defensive
        return False
    return True


def run_interruptible(runner: Callable[[Optional[Sequence[str]]], int],
                      argv: Optional[Sequence[str]] = None,
                      note: str = _DEFAULT_NOTE) -> int:
    """Run a CLI entry point with graceful-shutdown parity.

    Installs the SIGTERM handler, then converts the resulting
    ``KeyboardInterrupt`` (from either signal) into exit status 130
    after printing ``note`` — by the time the interrupt reaches here,
    every store-backed driver has already checkpointed its finished
    work on the unwind path.
    """
    install_sigterm_interrupt()
    try:
        return runner(argv)
    except KeyboardInterrupt:
        print(note, file=sys.stderr)
        return INTERRUPTED_EXIT
