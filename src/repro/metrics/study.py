"""Quantitative debug-information metrics (Section 2, Figure 1).

For an optimized executable and its ``-O0`` counterpart of the same
program, computes:

* **line coverage** — the ratio of unique source lines the debugger can
  step on, compared to ``-O0``;
* **availability of variables** — the average, over the source lines
  steppable in *both* instances, of the ratio of available local
  variables to the ``-O0`` count on that line;
* their **product**, the per-stepped-point information retention used to
  compare optimization levels.

The study driver aggregates these as global averages over a program pool,
per (compiler version, optimization level) — exactly the grid Figure 1
plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..compilers.compiler import Compiler
from ..debugger.base import Debugger
from ..debugger.trace import DebugTrace
from ..lang.ast_nodes import Program


@dataclass
class ProgramMetrics:
    """Metrics of one optimized instance against its -O0 baseline."""

    line_coverage: float
    availability: float

    @property
    def product(self) -> float:
        return self.line_coverage * self.availability


def _available_locals(visit) -> int:
    return sum(1 for report in visit.variables.values()
               if not report.is_global and report.available)


def compare_traces(baseline: DebugTrace,
                   optimized: DebugTrace) -> ProgramMetrics:
    """Metrics of an optimized trace against the -O0 trace."""
    base_lines = baseline.stepped_lines()
    opt_lines = optimized.stepped_lines()
    if not base_lines:
        return ProgramMetrics(line_coverage=0.0, availability=0.0)
    line_coverage = len(opt_lines & base_lines) / len(base_lines)

    ratios: List[float] = []
    for line in sorted(base_lines & opt_lines):
        base_visit = baseline.visit_for_line(line)
        opt_visit = optimized.visit_for_line(line)
        base_avail = _available_locals(base_visit)
        if base_avail == 0:
            continue
        ratios.append(min(1.0, _available_locals(opt_visit) / base_avail))
    availability = sum(ratios) / len(ratios) if ratios else 0.0
    return ProgramMetrics(line_coverage=line_coverage,
                          availability=availability)


def measure_program(program: Program, compiler: Compiler, level: str,
                    debugger: Debugger,
                    baseline: Optional[DebugTrace] = None
                    ) -> ProgramMetrics:
    """Compile at -O0 and ``level`` and compare the two traces."""
    if baseline is None:
        baseline = debugger.trace(compiler.compile(program, "O0").exe)
    optimized = debugger.trace(compiler.compile(program, level).exe)
    return compare_traces(baseline, optimized)


@dataclass
class StudyResult:
    """Aggregated Figure 1 grid."""

    #: (version, level) -> averaged metrics over the pool
    cells: Dict[Tuple[str, str], ProgramMetrics] = field(
        default_factory=dict)
    pool_size: int = 0

    def cell(self, version: str, level: str) -> ProgramMetrics:
        return self.cells[(version, level)]

    def format_table(self, metric: str = "availability") -> str:
        versions = sorted({v for v, _l in self.cells})
        levels = sorted({l for _v, l in self.cells})
        rows = ["version  " + "  ".join(f"{l:>6}" for l in levels)]
        for version in versions:
            vals = []
            for level in levels:
                m = self.cells.get((version, level))
                vals.append(f"{getattr(m, metric):6.3f}" if m else "     -")
            rows.append(f"{version:>7}  " + "  ".join(vals))
        return "\n".join(rows)


def run_study(programs: Sequence[Program], family: str,
              versions: Sequence[str], levels: Sequence[str],
              debugger: Debugger) -> StudyResult:
    """The Section 2 quantitative study over a program pool."""
    result = StudyResult(pool_size=len(programs))
    for version in versions:
        compiler = Compiler(family, version)
        baselines = [debugger.trace(compiler.compile(p, "O0").exe)
                     for p in programs]
        for level in levels:
            coverage_sum = 0.0
            avail_sum = 0.0
            count = 0
            for program, baseline in zip(programs, baselines):
                metrics = measure_program(program, compiler, level,
                                          debugger, baseline)
                coverage_sum += metrics.line_coverage
                avail_sum += metrics.availability
                count += 1
            result.cells[(version, level)] = ProgramMetrics(
                line_coverage=coverage_sum / max(count, 1),
                availability=avail_sum / max(count, 1))
    return result
