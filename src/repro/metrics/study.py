"""Quantitative debug-information metrics (Section 2, Figure 1).

For an optimized executable and its ``-O0`` counterpart of the same
program, computes:

* **line coverage** — the ratio of unique source lines the debugger can
  step on, compared to ``-O0``;
* **availability of variables** — the average, over the source lines
  steppable in *both* instances, of the ratio of available local
  variables to the ``-O0`` count on that line;
* their **product**, the per-stepped-point information retention used to
  compare optimization levels.

The study driver aggregates these as global averages over a program pool,
per (compiler version, optimization level) — exactly the grid Figure 1
plots.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..compilers.compiler import Compiler
from ..debugger.base import Debugger
from ..debugger.trace import DebugTrace
from ..fuzz.seeds import SeedSpec
from ..lang.ast_nodes import Program

#: Artifact schema tag for stored study results.
STUDY_SCHEMA = "repro-study/1"

#: Per-cell, per-program metrics in pool order — the mergeable shard
#: value: concatenating shard lists in seed order and reducing gives the
#: exact floats of the serial run (same left-to-right summation).
CellSamples = Dict[Tuple[str, str], List["ProgramMetrics"]]


@dataclass
class ProgramMetrics:
    """Metrics of one optimized instance against its -O0 baseline."""

    line_coverage: float
    availability: float

    @property
    def product(self) -> float:
        return self.line_coverage * self.availability


def _available_locals(visit) -> int:
    return sum(1 for report in visit.variables.values()
               if not report.is_global and report.available)


def compare_traces(baseline: DebugTrace,
                   optimized: DebugTrace) -> ProgramMetrics:
    """Metrics of an optimized trace against the -O0 trace."""
    base_lines = baseline.stepped_lines()
    opt_lines = optimized.stepped_lines()
    if not base_lines:
        return ProgramMetrics(line_coverage=0.0, availability=0.0)
    line_coverage = len(opt_lines & base_lines) / len(base_lines)

    ratios: List[float] = []
    for line in sorted(base_lines & opt_lines):
        base_visit = baseline.visit_for_line(line)
        opt_visit = optimized.visit_for_line(line)
        base_avail = _available_locals(base_visit)
        if base_avail == 0:
            continue
        ratios.append(min(1.0, _available_locals(opt_visit) / base_avail))
    availability = sum(ratios) / len(ratios) if ratios else 0.0
    return ProgramMetrics(line_coverage=line_coverage,
                          availability=availability)


def measure_program(program: Program, compiler: Compiler, level: str,
                    debugger: Debugger,
                    baseline: Optional[DebugTrace] = None
                    ) -> ProgramMetrics:
    """Compile at -O0 and ``level`` and compare the two traces."""
    if baseline is None:
        baseline = debugger.trace(compiler.compile(program, "O0").exe)
    optimized = debugger.trace(compiler.compile(program, level).exe)
    return compare_traces(baseline, optimized)


@dataclass
class StudyResult:
    """Aggregated Figure 1 grid."""

    #: (version, level) -> averaged metrics over the pool
    cells: Dict[Tuple[str, str], ProgramMetrics] = field(
        default_factory=dict)
    pool_size: int = 0

    def cell(self, version: str, level: str) -> ProgramMetrics:
        return self.cells[(version, level)]

    def format_table(self, metric: str = "availability") -> str:
        """One Figure 1 panel as fixed-width text (rendered through
        :func:`repro.report.fig1_table`, the same code path as
        ``repro-report fig1``)."""
        from ..report.renderers import render
        from ..report.tables import fig1_table
        return render(fig1_table(self, metric), "text")

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": STUDY_SCHEMA,
            "pool_size": self.pool_size,
            "cells": [
                {"version": version, "level": level,
                 "line_coverage": metrics.line_coverage,
                 "availability": metrics.availability}
                for (version, level), metrics in sorted(self.cells.items())
            ],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The ``repro-study/1`` artifact document (field-by-field spec
        in ``docs/ARTIFACTS.md``); ``repro-report fig1`` renders it."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StudyResult":
        schema = data.get("schema")
        if schema != STUDY_SCHEMA:
            raise ValueError(
                f"not a study artifact: schema {schema!r} "
                f"(expected {STUDY_SCHEMA!r})")
        result = cls(pool_size=data["pool_size"])
        for cell in data["cells"]:
            result.cells[(cell["version"], cell["level"])] = \
                ProgramMetrics(line_coverage=cell["line_coverage"],
                               availability=cell["availability"])
        return result

    @classmethod
    def from_json(cls, text: str) -> "StudyResult":
        """Load a stored ``repro-study/1`` artifact (see
        ``docs/ARTIFACTS.md``)."""
        return cls.from_dict(json.loads(text))


def baseline_traces(programs: Sequence[Program], debugger: Debugger,
                    family: str = "gcc",
                    version: str = "trunk") -> List[DebugTrace]:
    """One ``-O0`` trace per program, shared across every study cell.

    Sharing across versions is legitimate because the ``-O0``
    executable is version-independent: no pass pipeline runs and no
    defect hooks are consulted below the first optimized level (the
    compiler links with ``hooks=None`` at ``O0``).  ``family``/
    ``version`` name the compiler actually invoked so the study under
    measurement builds its own baseline rather than leaning on that
    invariant across families too.
    """
    compiler = Compiler(family, version)
    return [debugger.trace(compiler.compile(p, "O0").exe)
            for p in programs]


def measure_pool_cells(programs: Sequence[Program], family: str,
                       versions: Sequence[str], levels: Sequence[str],
                       debugger: Debugger,
                       baselines: Optional[Sequence[DebugTrace]] = None
                       ) -> CellSamples:
    """Per-program metrics for every (version, level) cell, in pool
    order — the shard-level unit of the sharded study.  The ``-O0``
    baseline is traced once per program and reused across every
    (version, level) cell."""
    cells: CellSamples = {}
    if baselines is None:
        baselines = baseline_traces(
            programs, debugger, family,
            versions[0] if versions else "trunk")
    for version in versions:
        compiler = Compiler(family, version)
        for level in levels:
            cells[(version, level)] = [
                measure_program(program, compiler, level, debugger,
                                baseline)
                for program, baseline in zip(programs, baselines)]
    return cells


def reduce_cells(cells: CellSamples, pool_size: int) -> StudyResult:
    """Average per-program cell samples into the Figure 1 grid.

    Sums strictly left to right so that a serial run and a sharded run
    whose per-shard lists are concatenated in seed order produce
    bit-identical averages.
    """
    result = StudyResult(pool_size=pool_size)
    for key, samples in cells.items():
        coverage_sum = 0.0
        avail_sum = 0.0
        for metrics in samples:
            coverage_sum += metrics.line_coverage
            avail_sum += metrics.availability
        count = max(len(samples), 1)
        result.cells[key] = ProgramMetrics(
            line_coverage=coverage_sum / count,
            availability=avail_sum / count)
    return result


def run_study(programs: Sequence[Program], family: str,
              versions: Sequence[str], levels: Sequence[str],
              debugger: Debugger) -> StudyResult:
    """The Section 2 quantitative study over a program pool."""
    return reduce_cells(
        measure_pool_cells(programs, family, versions, levels, debugger),
        pool_size=len(programs))


def run_study_seeds(seeds: SeedSpec, family: str,
                    versions: Sequence[str], levels: Sequence[str],
                    debugger: Debugger) -> StudyResult:
    """Serial study over a seed range (the sharded driver's reference)."""
    return run_study(seeds.generate(), family, versions, levels, debugger)
