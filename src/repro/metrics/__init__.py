"""Quantitative debug-information metrics (Figure 1 study)."""

from .study import (
    ProgramMetrics, StudyResult, compare_traces, measure_program, run_study,
)
