"""Quantitative debug-information metrics (Figure 1 study)."""

from .study import (
    STUDY_SCHEMA, ProgramMetrics, StudyResult, compare_traces,
    measure_pool_cells, measure_program, reduce_cells, run_study,
    run_study_seeds,
)
