"""Conjecture 2 — Availability of constituents (Section 3.3).

    When stepping on a source-code line that assigns a value to global
    storage through a non-simplifiable expression, we expect a variable x
    taking part in the value computation to be visible at that line if
    (i) x is a constant or (ii) optimizations cannot alter the value of x
    and the program may use x later.

The source analysis (:class:`~repro.analysis.source_facts.SourceFacts`)
already applies the conjecture's three restrictions: trivially
simplifiable expressions are excluded, only global-storage assignments
anchor a check, and each constituent carries the reason it is expected
("constant", "induction", or "live_after").
"""

from __future__ import annotations

from typing import List

from ..analysis.source_facts import SourceFacts
from ..debugger.trace import AVAILABLE, DebugTrace
from .base import C2, ConjectureChecker, Violation


class ConstituentChecker(ConjectureChecker):
    """Checks constituent availability at global-store lines."""

    conjecture = C2

    def check(self, facts: SourceFacts,
              trace: DebugTrace) -> List[Violation]:
        violations: List[Violation] = []
        for site in facts.global_store_sites:
            visit = trace.visit_for_line(site.line)
            if visit is None:
                continue
            for constituent in site.constituents:
                sym = constituent.symbol
                status = visit.status_of(sym.name)
                if status != AVAILABLE:
                    violations.append(Violation(
                        conjecture=C2, line=site.line, variable=sym.name,
                        function=site.function, observed=status,
                        detail=f"{constituent.reason} constituent of "
                               f"store to {site.target.name}"))
        return violations
