"""Conjecture 1 — Visibility of call argument sources (Section 3.2).

    When a program variable appears as an argument for a call to an
    opaque function, the variable should be visible along with its value
    when stepping on the source line containing the call.

The optimizer must materialize the argument's value for the call (it
cannot know what the opaque callee does with it), so complete debug
information can always describe the variable at that point. A variable
that is missing from the frame or shown as optimized out is a violation.
"""

from __future__ import annotations

from typing import List

from ..analysis.source_facts import SourceFacts
from ..debugger.trace import AVAILABLE, DebugTrace
from .base import C1, ConjectureChecker, Violation


class CallArgumentChecker(ConjectureChecker):
    """Checks opaque-call argument availability."""

    conjecture = C1

    def check(self, facts: SourceFacts,
              trace: DebugTrace) -> List[Violation]:
        violations: List[Violation] = []
        for site in facts.call_arg_sites:
            visit = trace.visit_for_line(site.line)
            if visit is None:
                continue  # line never stepped; nothing to check
            for sym in site.arg_symbols:
                if sym.is_global:
                    continue  # globals live at fixed addresses
                status = visit.status_of(sym.name)
                if status != AVAILABLE:
                    violations.append(Violation(
                        conjecture=C1, line=site.line, variable=sym.name,
                        function=site.function, observed=status,
                        detail=f"argument of opaque call to "
                               f"{site.callee}"))
        return violations
