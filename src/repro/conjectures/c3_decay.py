"""Conjecture 3 — Decaying visibility of a variable (Section 3.4).

    When a function assigns to a local variable and a subsequent source
    line can be stepped on, the availability of the variable value can
    only remain the same or worsen in the remainder of the program.

Reassignments are the only events allowed to "refresh" visibility; each
assignment starts a new variable instance. Availability is ranked
``available (2) > optimized_out (1) > missing (0)`` and the checker walks
the trace in execution order, flagging any rank increase that is not
anchored at an assignment line of the variable.
"""

from __future__ import annotations

from typing import List

from ..analysis.source_facts import SourceFacts
from ..debugger.trace import DebugTrace
from .base import C3, ConjectureChecker, Violation

_STATUS_BY_RANK = {0: "missing", 1: "optimized_out", 2: "available"}


class DecayChecker(ConjectureChecker):
    """Checks that availability only decays between reassignments."""

    conjecture = C3

    def check(self, facts: SourceFacts,
              trace: DebugTrace) -> List[Violation]:
        violations: List[Violation] = []
        symtab = facts.symtab
        for fn_name, info in symtab.functions.items():
            for sym in info.locals:
                violations.extend(
                    self._check_symbol(facts, trace, fn_name, sym))
        return violations

    def _check_symbol(self, facts: SourceFacts, trace: DebugTrace,
                      fn_name: str, sym) -> List[Violation]:
        assignment_lines = set(facts.assignment_lines(sym))
        if not assignment_lines:
            return []
        first_assign = min(assignment_lines)
        violations: List[Violation] = []
        prev_rank = None
        prev_line = None
        for visit in trace.visits_in_order():
            if visit.function != fn_name:
                continue
            if not (sym.scope_start <= visit.line <= sym.scope_end):
                continue
            if visit.line <= first_assign and prev_rank is None:
                continue  # instance not started yet
            rank = visit.rank_of(sym.name)
            if self._refreshed(assignment_lines, prev_line, visit.line):
                # A reassignment (possibly on a non-steppable line) may
                # have executed since the last stop: new instance.
                prev_rank = rank
                prev_line = visit.line
                continue
            if prev_rank is None:
                prev_rank = rank
                prev_line = visit.line
                continue
            if rank > prev_rank:
                violations.append(Violation(
                    conjecture=C3, line=visit.line, variable=sym.name,
                    function=fn_name,
                    observed=visit.status_of(sym.name),
                    detail=f"availability improved from "
                           f"{_STATUS_BY_RANK[prev_rank]} without a "
                           f"reassignment"))
            prev_rank = min(prev_rank, rank)
            prev_line = visit.line
        return violations

    @staticmethod
    def _refreshed(assignment_lines, prev_line, line) -> bool:
        """Could an assignment have executed between the two stops?

        A breakpoint stops *before* the line's code runs, so the previous
        stop's own assignment executed after we observed it: the window
        of assignments that may have run is ``[prev, line)`` for forward
        motion. Backward motion (a loop back edge) means anything outside
        ``[line, prev)`` may have run. Conservative on purpose — a false
        refresh only hides violations, never invents them (the paper's
        Section 7 trade-off).
        """
        if prev_line is None:
            return False
        if line >= prev_line:
            return any(prev_line <= a < line for a in assignment_lines)
        return any(a >= prev_line or a < line for a in assignment_lines)
