"""The three conjectures and their checkers."""

from .base import C1, C2, C3, CONJECTURES, ConjectureChecker, Violation, check_all
from .c1_call_args import CallArgumentChecker
from .c2_constituents import ConstituentChecker
from .c3_decay import DecayChecker
