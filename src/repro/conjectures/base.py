"""Conjecture checking infrastructure.

A checker consumes a :class:`~repro.analysis.source_facts.SourceFacts`
(what the source *promises*) and a
:class:`~repro.debugger.trace.DebugTrace` (what the debugger *showed*) and
produces :class:`Violation` records. Violations at different program lines
are distinct, as in the paper's counting (Section 5.1); the ``key`` is the
deduplication unit used for the "unique" rows and the Venn diagrams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..analysis.source_facts import SourceFacts
from ..debugger.trace import DebugTrace

C1 = "C1"
C2 = "C2"
C3 = "C3"
CONJECTURES = (C1, C2, C3)


@dataclass(frozen=True)
class Violation:
    """One conjecture violation at one source line."""

    conjecture: str
    line: int
    variable: str
    function: str
    observed: str          # "missing" | "optimized_out" | ...
    detail: str = ""

    def key(self) -> Tuple[str, int, str]:
        """Identity for unique-violation counting."""
        return (self.conjecture, self.line, self.variable)

    def __str__(self) -> str:
        return (f"[{self.conjecture}] line {self.line}: variable "
                f"{self.variable!r} in {self.function} is {self.observed}"
                + (f" ({self.detail})" if self.detail else ""))


class ConjectureChecker:
    """Base class for the three conjecture checkers."""

    conjecture = "?"

    def check(self, facts: SourceFacts,
              trace: DebugTrace) -> List[Violation]:
        raise NotImplementedError


def check_all(facts: SourceFacts, trace: DebugTrace,
              checkers: Optional[List[ConjectureChecker]] = None
              ) -> List[Violation]:
    """Run all (or the given) checkers over one trace."""
    from .c1_call_args import CallArgumentChecker
    from .c2_constituents import ConstituentChecker
    from .c3_decay import DecayChecker
    if checkers is None:
        checkers = [CallArgumentChecker(), ConstituentChecker(),
                    DecayChecker()]
    out: List[Violation] = []
    for checker in checkers:
        out.extend(checker.check(facts, trace))
    return out
