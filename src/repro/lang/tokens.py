"""Token definitions for the mini-C lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    """Lexical category of a token."""

    IDENT = auto()
    NUMBER = auto()
    STRING = auto()

    # keywords
    KW_INT = auto()
    KW_SHORT = auto()
    KW_CHAR = auto()
    KW_LONG = auto()
    KW_UNSIGNED = auto()
    KW_SIGNED = auto()
    KW_VOID = auto()
    KW_VOLATILE = auto()
    KW_STATIC = auto()
    KW_EXTERN = auto()
    KW_CONST = auto()
    KW_IF = auto()
    KW_ELSE = auto()
    KW_FOR = auto()
    KW_WHILE = auto()
    KW_DO = auto()
    KW_RETURN = auto()
    KW_GOTO = auto()
    KW_BREAK = auto()
    KW_CONTINUE = auto()

    # punctuation / operators
    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()
    RBRACE = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    SEMI = auto()
    COMMA = auto()
    COLON = auto()
    QUESTION = auto()
    ELLIPSIS = auto()

    ASSIGN = auto()          # =
    PLUS_ASSIGN = auto()     # +=
    MINUS_ASSIGN = auto()    # -=
    STAR_ASSIGN = auto()     # *=
    SLASH_ASSIGN = auto()    # /=
    PERCENT_ASSIGN = auto()  # %=
    AMP_ASSIGN = auto()      # &=
    PIPE_ASSIGN = auto()     # |=
    CARET_ASSIGN = auto()    # ^=

    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    AMP = auto()
    PIPE = auto()
    CARET = auto()
    TILDE = auto()
    BANG = auto()
    SHL = auto()             # <<
    SHR = auto()             # >>
    ANDAND = auto()          # &&
    OROR = auto()            # ||
    EQ = auto()              # ==
    NE = auto()              # !=
    LT = auto()
    LE = auto()
    GT = auto()
    GE = auto()
    PLUSPLUS = auto()        # ++
    MINUSMINUS = auto()      # --

    EOF = auto()


#: Reserved words mapped to their token kinds.
KEYWORDS = {
    "int": TokenKind.KW_INT,
    "short": TokenKind.KW_SHORT,
    "char": TokenKind.KW_CHAR,
    "long": TokenKind.KW_LONG,
    "unsigned": TokenKind.KW_UNSIGNED,
    "signed": TokenKind.KW_SIGNED,
    "void": TokenKind.KW_VOID,
    "volatile": TokenKind.KW_VOLATILE,
    "static": TokenKind.KW_STATIC,
    "extern": TokenKind.KW_EXTERN,
    "const": TokenKind.KW_CONST,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "for": TokenKind.KW_FOR,
    "while": TokenKind.KW_WHILE,
    "do": TokenKind.KW_DO,
    "return": TokenKind.KW_RETURN,
    "goto": TokenKind.KW_GOTO,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokenKind
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, L{self.line})"
