"""AST for the mini-C language.

Every node carries the 1-based source ``line`` it starts on. Lines are the
currency of the whole system: the compiler's line table, the debugger's
stepping, and the conjecture checkers all speak in terms of these numbers,
so AST construction (by the parser or by the fuzzer) must assign them
consistently. The printer is the inverse: it renders a program such that
each statement lands on its recorded line.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .types import ArrayType, IntType, PointerType, Type

_node_counter = itertools.count(1)


@dataclass
class Node:
    """Base class for all AST nodes."""

    line: int = 0
    uid: int = field(default_factory=lambda: next(_node_counter), repr=False,
                     compare=False)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLit(Expr):
    """Integer literal."""

    value: int = 0


@dataclass
class Ident(Expr):
    """Reference to a variable by name; resolved by ``analysis.scopes``."""

    name: str = ""


@dataclass
class ArrayIndex(Expr):
    """``base[index]`` — ``base`` may itself be an ArrayIndex (multi-dim)."""

    base: Expr = None
    index: Expr = None


@dataclass
class Unary(Expr):
    """Unary operation: ``-``, ``!``, ``~``, ``&`` (address-of), ``*``
    (dereference), and prefix/postfix ``++``/``--``."""

    op: str = "-"
    operand: Expr = None
    prefix: bool = True


@dataclass
class Binary(Expr):
    """Binary operation over the usual C operator set."""

    op: str = "+"
    left: Expr = None
    right: Expr = None


@dataclass
class Assign(Expr):
    """Assignment expression (C-style, usable inside larger expressions).

    ``op`` is ``"="`` or a compound operator (``"+="`` ...). The target is
    an lvalue expression: :class:`Ident`, :class:`ArrayIndex`, or a
    dereference :class:`Unary`.
    """

    target: Expr = None
    value: Expr = None
    op: str = "="


@dataclass
class Call(Expr):
    """Function call by name."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Conditional(Expr):
    """Ternary conditional ``cond ? then : other``."""

    cond: Expr = None
    then: Expr = None
    other: Expr = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class VarDecl(Node):
    """A single declared variable (one declarator).

    Used both for globals (``is_global=True``) and locals inside a
    :class:`DeclStmt`. ``init`` is an expression for scalars, or a nested
    list structure of expressions for brace-initialized arrays.
    """

    name: str = ""
    type: Type = field(default_factory=IntType)
    init: object = None
    is_global: bool = False
    volatile: bool = False
    static: bool = False


@dataclass
class DeclStmt(Stmt):
    """A declaration statement: ``int i = 0, j, k;``."""

    decls: List[VarDecl] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect: assignments and calls."""

    expr: Expr = None


@dataclass
class Block(Stmt):
    """A compound statement ``{ ... }``."""

    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    """``if (cond) then [else other]``."""

    cond: Expr = None
    then: Stmt = None
    other: Optional[Stmt] = None


@dataclass
class For(Stmt):
    """``for (init; cond; step) body``; each header part may be absent.

    ``init`` is either a :class:`DeclStmt`, an :class:`ExprStmt`, or None.
    """

    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None


@dataclass
class While(Stmt):
    """``while (cond) body``."""

    cond: Expr = None
    body: Stmt = None


@dataclass
class DoWhile(Stmt):
    """``do body while (cond);``."""

    body: Stmt = None
    cond: Expr = None


@dataclass
class Return(Stmt):
    """``return [expr];``."""

    value: Optional[Expr] = None


@dataclass
class Goto(Stmt):
    """``goto label;``."""

    label: str = ""


@dataclass
class LabeledStmt(Stmt):
    """``label: stmt``."""

    label: str = ""
    stmt: Stmt = None


@dataclass
class Break(Stmt):
    """``break;``."""


@dataclass
class Continue(Stmt):
    """``continue;``."""


@dataclass
class Empty(Stmt):
    """A lone ``;``."""


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Param(Node):
    """A function parameter."""

    name: str = ""
    type: Type = field(default_factory=IntType)


@dataclass
class FuncDef(Node):
    """A function definition."""

    name: str = ""
    return_type: Type = field(default_factory=IntType)
    params: List[Param] = field(default_factory=list)
    body: Block = None
    static: bool = False


@dataclass
class ExternDecl(Node):
    """An external (opaque) function declaration.

    Opaque functions are the anchor of Conjecture 1: the optimizer knows
    nothing about their body and must materialize argument values.
    """

    name: str = ""
    return_type: Optional[Type] = None  # None means void
    variadic: bool = False
    param_types: List[Type] = field(default_factory=list)


@dataclass
class Program(Node):
    """A whole translation unit."""

    globals: List[VarDecl] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)
    externs: List[ExternDecl] = field(default_factory=list)

    def function(self, name: str) -> FuncDef:
        """Look up a function definition by name."""
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)

    def global_decl(self, name: str) -> VarDecl:
        """Look up a global declaration by name."""
        for g in self.globals:
            if g.name == name:
                return g
        raise KeyError(name)

    def extern_names(self) -> List[str]:
        """Names of all declared opaque functions."""
        return [e.name for e in self.externs]


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk_expr(expr: Expr):
    """Yield ``expr`` and all sub-expressions, pre-order."""
    if expr is None:
        return
    yield expr
    if isinstance(expr, ArrayIndex):
        yield from walk_expr(expr.base)
        yield from walk_expr(expr.index)
    elif isinstance(expr, Unary):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Binary):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, Assign):
        yield from walk_expr(expr.target)
        yield from walk_expr(expr.value)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, Conditional):
        yield from walk_expr(expr.cond)
        yield from walk_expr(expr.then)
        yield from walk_expr(expr.other)


def _init_exprs(init):
    """Yield all expressions inside a (possibly nested) initializer."""
    if init is None:
        return
    if isinstance(init, list):
        for item in init:
            yield from _init_exprs(item)
    else:
        yield from walk_expr(init)


def walk_stmt(stmt: Stmt):
    """Yield ``stmt`` and all nested statements, pre-order."""
    if stmt is None:
        return
    yield stmt
    if isinstance(stmt, Block):
        for s in stmt.stmts:
            yield from walk_stmt(s)
    elif isinstance(stmt, If):
        yield from walk_stmt(stmt.then)
        yield from walk_stmt(stmt.other)
    elif isinstance(stmt, For):
        yield from walk_stmt(stmt.init)
        yield from walk_stmt(stmt.body)
    elif isinstance(stmt, (While, DoWhile)):
        yield from walk_stmt(stmt.body)
    elif isinstance(stmt, LabeledStmt):
        yield from walk_stmt(stmt.stmt)


def stmt_exprs(stmt: Stmt):
    """Yield the expressions directly owned by ``stmt`` (not nested stmts)."""
    if isinstance(stmt, ExprStmt):
        yield from walk_expr(stmt.expr)
    elif isinstance(stmt, DeclStmt):
        for d in stmt.decls:
            yield from _init_exprs(d.init)
    elif isinstance(stmt, If):
        yield from walk_expr(stmt.cond)
    elif isinstance(stmt, For):
        if stmt.cond is not None:
            yield from walk_expr(stmt.cond)
        if stmt.step is not None:
            yield from walk_expr(stmt.step)
    elif isinstance(stmt, (While, DoWhile)):
        yield from walk_expr(stmt.cond)
    elif isinstance(stmt, Return):
        if stmt.value is not None:
            yield from walk_expr(stmt.value)


def walk_program_stmts(program: Program):
    """Yield every statement in every function of ``program``."""
    for fn in program.functions:
        yield from walk_stmt(fn.body)


__all__ = [
    "Node", "Expr", "IntLit", "Ident", "ArrayIndex", "Unary", "Binary",
    "Assign", "Call", "Conditional", "Stmt", "VarDecl", "DeclStmt",
    "ExprStmt", "Block", "If", "For", "While", "DoWhile", "Return", "Goto",
    "LabeledStmt", "Break", "Continue", "Empty", "Param", "FuncDef",
    "ExternDecl", "Program", "walk_expr", "walk_stmt", "stmt_exprs",
    "walk_program_stmts", "ArrayType", "IntType", "PointerType", "Type",
]
