"""Hand-written lexer for the mini-C language.

The lexer tracks line numbers precisely because the entire debug-info
pipeline keys on source lines: the line table, debugger stepping, and the
conjecture checkers all reason in terms of the line a token appeared on.
"""

from __future__ import annotations

from typing import List

from .tokens import KEYWORDS, Token, TokenKind


class LexError(Exception):
    """Raised on an unrecognized character or malformed literal."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"line {line}:{col}: {message}")
        self.line = line
        self.col = col


#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = [
    ("...", TokenKind.ELLIPSIS),
    ("<<=", None),  # unsupported, reported as error below
    (">>=", None),
    ("<<", TokenKind.SHL),
    (">>", TokenKind.SHR),
    ("&&", TokenKind.ANDAND),
    ("||", TokenKind.OROR),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("++", TokenKind.PLUSPLUS),
    ("--", TokenKind.MINUSMINUS),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("%=", TokenKind.PERCENT_ASSIGN),
    ("&=", TokenKind.AMP_ASSIGN),
    ("|=", TokenKind.PIPE_ASSIGN),
    ("^=", TokenKind.CARET_ASSIGN),
]

_SINGLE_OPS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ":": TokenKind.COLON,
    "?": TokenKind.QUESTION,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "&": TokenKind.AMP,
    "|": TokenKind.PIPE,
    "^": TokenKind.CARET,
    "~": TokenKind.TILDE,
    "!": TokenKind.BANG,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
}


class Lexer:
    """Converts mini-C source text into a token stream."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.col
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated comment", start_line, start_col)
            else:
                return

    def _lex_number(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
        # Swallow integer suffixes (UL etc.) so Csmith-style constants lex.
        while self._peek() and self._peek() in "uUlL":
            self._advance()
        return Token(TokenKind.NUMBER, self.source[start : self.pos], line, col)

    def _lex_ident(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        while self._peek() and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.source[start : self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, line, col)

    def _lex_string(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        self._advance()  # opening quote
        while self._peek() and self._peek() != '"':
            if self._peek() == "\\":
                self._advance()
            self._advance()
        if not self._peek():
            raise LexError("unterminated string", line, col)
        self._advance()  # closing quote
        return Token(TokenKind.STRING, self.source[start : self.pos], line, col)

    def next_token(self) -> Token:
        """Return the next token (EOF token at end of input)."""
        self._skip_trivia()
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", self.line, self.col)

        ch = self._peek()
        if ch.isdigit():
            return self._lex_number()
        if ch.isalpha() or ch == "_":
            return self._lex_ident()
        if ch == '"':
            return self._lex_string()

        for text, kind in _MULTI_OPS:
            if self.source.startswith(text, self.pos):
                if kind is None:
                    raise LexError(f"unsupported operator {text!r}", self.line, self.col)
                tok = Token(kind, text, self.line, self.col)
                self._advance(len(text))
                return tok

        if ch in _SINGLE_OPS:
            tok = Token(_SINGLE_OPS[ch], ch, self.line, self.col)
            self._advance()
            return tok

        raise LexError(f"unexpected character {ch!r}", self.line, self.col)

    def tokenize(self) -> List[Token]:
        """Lex the entire input, returning tokens ending with EOF."""
        tokens: List[Token] = []
        while True:
            tok = self.next_token()
            tokens.append(tok)
            if tok.kind is TokenKind.EOF:
                return tokens


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source).tokenize()
