"""Source printer for the mini-C AST.

The printer produces canonical C-like text and, importantly, *assigns line
numbers back onto the AST* so that the AST and the emitted source agree on
which line every statement lives on. The whole downstream pipeline (line
tables, debugger stepping, conjecture checking) relies on this agreement,
so both the parser and the fuzzer funnel their programs through
:func:`print_program` before compilation.

Conventions (one statement per line, matching how Csmith output is usually
normalized for bug reports):

* each global declaration, statement, and closing brace gets its own line;
* ``if (cond) {`` / ``for (...) {`` / function headers share a line with
  their opening brace;
* a labeled statement shares its line with its label (``f: if (a)``).
"""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as A
from .types import ArrayType, IntType, PointerType, Type

#: Precedence levels for parenthesization; mirrors the parser's table.
_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}
_PREC_UNARY = 11
_PREC_POSTFIX = 12
_PREC_ASSIGN = 0
_PREC_COND = 0.5


def format_type_prefix(ty: Type) -> str:
    """The part of a declaration before the variable name."""
    if isinstance(ty, ArrayType):
        return format_type_prefix(ty.elem)
    if isinstance(ty, PointerType):
        return format_type_prefix(ty.base) + " *"
    assert isinstance(ty, IntType)
    return ty.c_name()


def format_type_suffix(ty: Type) -> str:
    """The part of a declaration after the variable name (array extents)."""
    if isinstance(ty, ArrayType):
        return "".join(f"[{d}]" for d in ty.dims)
    return ""


def format_expr(expr: A.Expr, parent_prec: float = -1) -> str:
    """Render ``expr``, adding parentheses when precedence demands."""
    text, prec = _format_expr(expr)
    if prec < parent_prec:
        return f"({text})"
    return text


def _format_expr(expr: A.Expr):
    if isinstance(expr, A.IntLit):
        if expr.value < 0:
            return str(expr.value), _PREC_UNARY
        return str(expr.value), _PREC_POSTFIX
    if isinstance(expr, A.Ident):
        return expr.name, _PREC_POSTFIX
    if isinstance(expr, A.ArrayIndex):
        base = format_expr(expr.base, _PREC_POSTFIX)
        return f"{base}[{format_expr(expr.index)}]", _PREC_POSTFIX
    if isinstance(expr, A.Unary):
        if expr.op in ("++", "--"):
            if expr.prefix:
                inner = format_expr(expr.operand, _PREC_UNARY)
                return f"{expr.op}{inner}", _PREC_UNARY
            inner = format_expr(expr.operand, _PREC_POSTFIX)
            return f"{inner}{expr.op}", _PREC_POSTFIX
        inner = format_expr(expr.operand, _PREC_UNARY)
        return f"{expr.op}{inner}", _PREC_UNARY
    if isinstance(expr, A.Binary):
        prec = _PREC[expr.op]
        left = format_expr(expr.left, prec)
        right = format_expr(expr.right, prec + 1)
        return f"{left} {expr.op} {right}", prec
    if isinstance(expr, A.Assign):
        target = format_expr(expr.target, _PREC_UNARY)
        value = format_expr(expr.value, _PREC_ASSIGN)
        return f"{target} {expr.op} {value}", _PREC_ASSIGN
    if isinstance(expr, A.Call):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.name}({args})", _PREC_POSTFIX
    if isinstance(expr, A.Conditional):
        cond = format_expr(expr.cond, 1)
        then = format_expr(expr.then)
        other = format_expr(expr.other, _PREC_COND)
        return f"{cond} ? {then} : {other}", _PREC_COND
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def _format_initializer(init) -> str:
    if isinstance(init, list):
        return "{" + ", ".join(_format_initializer(i) for i in init) + "}"
    return format_expr(init)


def _base_int_type(ty: Type) -> IntType:
    """Peel arrays and pointers down to the underlying integer type."""
    if isinstance(ty, ArrayType):
        return _base_int_type(ty.elem)
    if isinstance(ty, PointerType):
        return _base_int_type(ty.base)
    assert isinstance(ty, IntType)
    return ty


def _declarator_text(decl: A.VarDecl) -> str:
    """The declarator part of a declaration: ``**name[2][3] = init``."""
    stars = ""
    inner = decl.type.elem if isinstance(decl.type, ArrayType) else decl.type
    while isinstance(inner, PointerType):
        stars += "*"
        inner = inner.base
    text = stars + decl.name + format_type_suffix(decl.type)
    if decl.init is not None:
        text += f" = {_format_initializer(decl.init)}"
    return text


def _format_decl(decl: A.VarDecl) -> str:
    return f"{_base_int_type(decl.type).c_name()} {_declarator_text(decl)}"


def _format_decl_stmt(stmt: A.DeclStmt) -> str:
    first = stmt.decls[0]
    prefix = ""
    if first.static:
        prefix += "static "
    if first.volatile:
        prefix += "volatile "
    base = _base_int_type(first.type).c_name()
    declarators = ", ".join(_declarator_text(d) for d in stmt.decls)
    return f"{prefix}{base} {declarators};"


class Printer:
    """Stateful printer that records emitted line numbers onto the AST."""

    def __init__(self, indent_width: int = 4):
        self.lines: List[str] = []
        self.indent = 0
        self.indent_width = indent_width

    # -- plumbing -----------------------------------------------------------

    def _emit(self, text: str) -> int:
        """Append one source line; returns its 1-based line number."""
        pad = " " * (self.indent * self.indent_width)
        self.lines.append(pad + text if text else "")
        return len(self.lines)

    def _stamp(self, node: A.Node, line: int) -> None:
        node.line = line

    def _stamp_expr(self, expr: Optional[A.Expr], line: int) -> None:
        if expr is None:
            return
        for sub in A.walk_expr(expr):
            sub.line = line

    def _stamp_init(self, init, line: int) -> None:
        if init is None:
            return
        if isinstance(init, list):
            for item in init:
                self._stamp_init(item, line)
        else:
            self._stamp_expr(init, line)

    # -- top level ------------------------------------------------------------

    def print_program(self, program: A.Program) -> str:
        """Render the program, stamping line numbers onto every node."""
        self.lines = []
        for ext in program.externs:
            line = self._emit(self._extern_text(ext))
            self._stamp(ext, line)
        for decl in program.globals:
            prefix = ""
            if decl.static:
                prefix += "static "
            if decl.volatile:
                prefix += "volatile "
            line = self._emit(prefix + _format_decl(decl) + ";")
            self._stamp(decl, line)
            self._stamp_init(decl.init, line)
        for fn in program.functions:
            self._print_function(fn)
        program.line = 1
        return "\n".join(self.lines) + "\n"

    def _extern_text(self, ext: A.ExternDecl) -> str:
        ret = "void" if ext.return_type is None else ext.return_type.c_name()
        params = [t.c_name() for t in ext.param_types]
        if ext.variadic:
            params.append("...")
        if not params:
            params = ["void"]
        return f"extern {ret} {ext.name}({', '.join(params)});"

    def _print_function(self, fn: A.FuncDef) -> None:
        ret = "void" if fn.return_type is None else fn.return_type.c_name()
        params = ", ".join(
            f"{format_type_prefix(p.type)} {p.name}".replace("* ", "*")
            for p in fn.params
        ) or "void"
        prefix = "static " if fn.static else ""
        line = self._emit(f"{prefix}{ret} {fn.name}({params}) {{")
        self._stamp(fn, line)
        for p in fn.params:
            p.line = line
        self.indent += 1
        for stmt in fn.body.stmts:
            self._print_stmt(stmt)
        self.indent -= 1
        self._emit("}")
        fn.body.line = line

    # -- statements -------------------------------------------------------------

    def _print_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Block):
            line = self._emit("{")
            self._stamp(stmt, line)
            self.indent += 1
            for inner in stmt.stmts:
                self._print_stmt(inner)
            self.indent -= 1
            self._emit("}")
        elif isinstance(stmt, A.DeclStmt):
            line = self._emit(_format_decl_stmt(stmt))
            self._stamp(stmt, line)
            for decl in stmt.decls:
                self._stamp(decl, line)
                self._stamp_init(decl.init, line)
        elif isinstance(stmt, A.ExprStmt):
            line = self._emit(format_expr(stmt.expr) + ";")
            self._stamp(stmt, line)
            self._stamp_expr(stmt.expr, line)
        elif isinstance(stmt, A.If):
            self._print_if(stmt)
        elif isinstance(stmt, A.For):
            self._print_for(stmt)
        elif isinstance(stmt, A.While):
            line = self._emit_header(
                f"while ({format_expr(stmt.cond)})", stmt.body)
            self._stamp(stmt, line)
            self._stamp_expr(stmt.cond, line)
            self._print_body(stmt.body)
        elif isinstance(stmt, A.DoWhile):
            line = self._emit("do {")
            self._stamp(stmt, line)
            self.indent += 1
            body_stmts = (stmt.body.stmts if isinstance(stmt.body, A.Block)
                          else [stmt.body])
            for inner in body_stmts:
                self._print_stmt(inner)
            self.indent -= 1
            tail = self._emit(f"}} while ({format_expr(stmt.cond)});")
            self._stamp_expr(stmt.cond, tail)
        elif isinstance(stmt, A.Return):
            if stmt.value is None:
                line = self._emit("return;")
            else:
                line = self._emit(f"return {format_expr(stmt.value)};")
                self._stamp_expr(stmt.value, line)
            self._stamp(stmt, line)
        elif isinstance(stmt, A.Goto):
            line = self._emit(f"goto {stmt.label};")
            self._stamp(stmt, line)
        elif isinstance(stmt, A.LabeledStmt):
            # The label gets its own line; the inner statement follows
            # (an empty inner statement is folded into the label line so
            # printing is a parse fixpoint).
            if isinstance(stmt.stmt, A.Empty):
                line = self._emit(f"{stmt.label}:;")
                self._stamp(stmt, line)
                self._stamp(stmt.stmt, line)
            else:
                line = self._emit(f"{stmt.label}:")
                self._stamp(stmt, line)
                self._print_stmt(stmt.stmt)
        elif isinstance(stmt, A.Break):
            self._stamp(stmt, self._emit("break;"))
        elif isinstance(stmt, A.Continue):
            self._stamp(stmt, self._emit("continue;"))
        elif isinstance(stmt, A.Empty):
            self._stamp(stmt, self._emit(";"))
        else:
            raise TypeError(f"unknown statement node {type(stmt).__name__}")

    def _emit_header(self, header: str, body: A.Stmt) -> int:
        if isinstance(body, A.Block):
            return self._emit(header + " {")
        return self._emit(header)

    def _print_body(self, body: A.Stmt) -> None:
        if isinstance(body, A.Block):
            self.indent += 1
            for inner in body.stmts:
                self._print_stmt(inner)
            self.indent -= 1
            self._emit("}")
            body.line = len(self.lines)
        else:
            self.indent += 1
            self._print_stmt(body)
            self.indent -= 1

    def _print_if(self, stmt: A.If) -> None:
        line = self._emit_header(f"if ({format_expr(stmt.cond)})", stmt.then)
        self._stamp(stmt, line)
        self._stamp_expr(stmt.cond, line)
        self._print_body(stmt.then)
        if stmt.other is not None:
            if isinstance(stmt.other, A.Block):
                self._emit("else {")
                self.indent += 1
                for inner in stmt.other.stmts:
                    self._print_stmt(inner)
                self.indent -= 1
                self._emit("}")
            else:
                self._emit("else")
                self.indent += 1
                self._print_stmt(stmt.other)
                self.indent -= 1

    def _print_for(self, stmt: A.For) -> None:
        if stmt.init is None:
            init_text = ""
        elif isinstance(stmt.init, A.DeclStmt):
            init_text = _format_decl_stmt(stmt.init)[:-1]  # strip ';'
        else:
            init_text = format_expr(stmt.init.expr)
        cond_text = "" if stmt.cond is None else format_expr(stmt.cond)
        step_text = "" if stmt.step is None else format_expr(stmt.step)
        header = f"for ({init_text}; {cond_text}; {step_text})"
        line = self._emit_header(header, stmt.body)
        self._stamp(stmt, line)
        if stmt.init is not None:
            self._stamp(stmt.init, line)
            if isinstance(stmt.init, A.DeclStmt):
                for decl in stmt.init.decls:
                    self._stamp(decl, line)
                    self._stamp_init(decl.init, line)
            else:
                self._stamp_expr(stmt.init.expr, line)
        self._stamp_expr(stmt.cond, line)
        self._stamp_expr(stmt.step, line)
        self._print_body(stmt.body)


def print_program(program: A.Program) -> str:
    """Render ``program`` to canonical source, stamping line numbers."""
    return Printer().print_program(program)
