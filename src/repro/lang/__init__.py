"""Mini-C language frontend: lexer, parser, AST, types, printer."""

from . import ast_nodes
from .ast_nodes import (
    ArrayIndex, Assign, Binary, Block, Break, Call, Conditional, Continue,
    DeclStmt, DoWhile, Empty, Expr, ExprStmt, ExternDecl, For, FuncDef,
    Goto, Ident, If, IntLit, LabeledStmt, Node, Param, Program, Return,
    Stmt, Unary, VarDecl, While, walk_expr, walk_stmt, stmt_exprs,
    walk_program_stmts,
)
from .lexer import LexError, Lexer, tokenize
from .parser import ParseError, Parser, parse, parse_expr
from .printer import Printer, format_expr, print_program
from .types import (
    CHAR, INT, INT_TYPES, LONG, SHORT, UCHAR, UINT, ULONG, USHORT,
    ArrayType, IntType, PointerType, Type, is_array, is_integer, is_pointer,
)
