"""Recursive-descent parser for the mini-C language.

Grammar (informal):

    program      := (extern_decl | global_decl | func_def)*
    extern_decl  := "extern" type IDENT "(" param_types ")" ";"
    func_def     := ["static"] type IDENT "(" params ")" block
    global_decl  := ["static"] ["volatile"] type declarator ("," declarator)* ";"
    declarator   := "*"* IDENT ("[" NUMBER "]")* ["=" initializer]
    stmt         := decl_stmt | expr_stmt | if | for | while | do_while
                  | return | goto | labeled | block | break | continue | ";"
    expr         := assignment ("," handled only in for-steps)

Operator precedence follows C. The parser is deliberately strict: anything
outside the subset raises :class:`ParseError` with a line number, which the
fuzzer's round-trip property tests rely on.
"""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as A
from .lexer import tokenize
from .tokens import Token, TokenKind as T
from .types import ArrayType, IntType, PointerType, Type, INT_TYPES


class ParseError(Exception):
    """Raised on a syntax error, carrying the offending line."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


#: Binary operator precedence table (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_BINOP_TOKENS = {
    T.OROR: "||", T.ANDAND: "&&", T.PIPE: "|", T.CARET: "^", T.AMP: "&",
    T.EQ: "==", T.NE: "!=", T.LT: "<", T.LE: "<=", T.GT: ">", T.GE: ">=",
    T.SHL: "<<", T.SHR: ">>", T.PLUS: "+", T.MINUS: "-", T.STAR: "*",
    T.SLASH: "/", T.PERCENT: "%",
}

_ASSIGN_TOKENS = {
    T.ASSIGN: "=", T.PLUS_ASSIGN: "+=", T.MINUS_ASSIGN: "-=",
    T.STAR_ASSIGN: "*=", T.SLASH_ASSIGN: "/=", T.PERCENT_ASSIGN: "%=",
    T.AMP_ASSIGN: "&=", T.PIPE_ASSIGN: "|=", T.CARET_ASSIGN: "^=",
}

_TYPE_KEYWORDS = {
    T.KW_INT, T.KW_SHORT, T.KW_CHAR, T.KW_LONG, T.KW_UNSIGNED, T.KW_SIGNED,
    T.KW_VOID, T.KW_VOLATILE, T.KW_STATIC, T.KW_EXTERN, T.KW_CONST,
}


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast_nodes.Program`."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not T.EOF:
            self.pos += 1
        return tok

    def _check(self, kind: T) -> bool:
        return self._peek().kind is kind

    def _accept(self, kind: T) -> Optional[Token]:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: T, what: str = "") -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            wanted = what or kind.name
            raise ParseError(
                f"expected {wanted}, found {tok.text!r}", tok.line
            )
        return self._advance()

    # -- types -------------------------------------------------------------

    def _at_type(self) -> bool:
        return self._peek().kind in _TYPE_KEYWORDS

    def _parse_base_type(self) -> Optional[Type]:
        """Parse an integer base type or ``void`` (returned as None)."""
        signed = True
        saw_sign = False
        if self._accept(T.KW_UNSIGNED):
            signed = False
            saw_sign = True
        elif self._accept(T.KW_SIGNED):
            saw_sign = True
        tok = self._peek()
        if tok.kind is T.KW_INT:
            self._advance()
            return INT_TYPES[("int", signed)]
        if tok.kind is T.KW_SHORT:
            self._advance()
            self._accept(T.KW_INT)
            return INT_TYPES[("short", signed)]
        if tok.kind is T.KW_CHAR:
            self._advance()
            return INT_TYPES[("char", signed)]
        if tok.kind is T.KW_LONG:
            self._advance()
            self._accept(T.KW_LONG)
            self._accept(T.KW_INT)
            return INT_TYPES[("long", signed)]
        if tok.kind is T.KW_VOID:
            if saw_sign:
                raise ParseError("'void' cannot be signed", tok.line)
            self._advance()
            return None
        if saw_sign:
            return INT_TYPES[("int", signed)]
        raise ParseError(f"expected a type, found {tok.text!r}", tok.line)

    # -- top level ----------------------------------------------------------

    def parse_program(self) -> A.Program:
        """Parse a whole translation unit."""
        program = A.Program(line=1)
        while not self._check(T.EOF):
            self._parse_top_level(program)
        return program

    def _parse_top_level(self, program: A.Program) -> None:
        if self._check(T.KW_EXTERN):
            program.externs.append(self._parse_extern())
            return

        static = bool(self._accept(T.KW_STATIC))
        volatile = bool(self._accept(T.KW_VOLATILE))
        self._accept(T.KW_CONST)
        line = self._peek().line
        base = self._parse_base_type()

        # Distinguish function definition from global declaration by
        # looking ahead: IDENT followed by '(' is a function.
        ptr_depth = 0
        while self._accept(T.STAR):
            ptr_depth += 1
        name_tok = self._expect(T.IDENT, "identifier")

        if self._check(T.LPAREN):
            if volatile:
                raise ParseError("volatile function", name_tok.line)
            ret = base
            for _ in range(ptr_depth):
                ret = PointerType(ret)
            fn = self._parse_func_def(name_tok.text, ret, line, static)
            program.functions.append(fn)
            return

        if base is None:
            raise ParseError("variable of type void", name_tok.line)

        decl = self._finish_declarator(
            name_tok.text, base, ptr_depth, line,
            is_global=True, volatile=volatile, static=static,
        )
        program.globals.append(decl)
        while self._accept(T.COMMA):
            ptr_depth = 0
            while self._accept(T.STAR):
                ptr_depth += 1
            ntok = self._expect(T.IDENT, "identifier")
            program.globals.append(
                self._finish_declarator(
                    ntok.text, base, ptr_depth, ntok.line,
                    is_global=True, volatile=volatile, static=static,
                )
            )
        self._expect(T.SEMI, "';'")

    def _parse_extern(self) -> A.ExternDecl:
        line = self._expect(T.KW_EXTERN).line
        ret = self._parse_base_type()
        ptr_depth = 0
        while self._accept(T.STAR):
            ptr_depth += 1
        for _ in range(ptr_depth):
            ret = PointerType(ret)
        name = self._expect(T.IDENT, "identifier").text
        self._expect(T.LPAREN, "'('")
        param_types: List[Type] = []
        variadic = False
        if not self._check(T.RPAREN):
            while True:
                if self._accept(T.ELLIPSIS):
                    variadic = True
                    break
                pty = self._parse_base_type()
                pdepth = 0
                while self._accept(T.STAR):
                    pdepth += 1
                for _ in range(pdepth):
                    pty = PointerType(pty)
                self._accept(T.IDENT)
                if pty is not None:
                    param_types.append(pty)
                if not self._accept(T.COMMA):
                    break
        self._expect(T.RPAREN, "')'")
        self._expect(T.SEMI, "';'")
        return A.ExternDecl(line=line, name=name, return_type=ret,
                            variadic=variadic, param_types=param_types)

    def _parse_func_def(self, name: str, ret: Optional[Type], line: int,
                        static: bool) -> A.FuncDef:
        self._expect(T.LPAREN, "'('")
        params: List[A.Param] = []
        if not self._check(T.RPAREN):
            if self._check(T.KW_VOID) and self._peek(1).kind is T.RPAREN:
                self._advance()
            else:
                while True:
                    pty = self._parse_base_type()
                    pdepth = 0
                    while self._accept(T.STAR):
                        pdepth += 1
                    for _ in range(pdepth):
                        pty = PointerType(pty)
                    ptok = self._expect(T.IDENT, "parameter name")
                    if pty is None:
                        raise ParseError("parameter of type void", ptok.line)
                    params.append(A.Param(line=ptok.line, name=ptok.text,
                                          type=pty))
                    if not self._accept(T.COMMA):
                        break
        self._expect(T.RPAREN, "')'")
        body = self._parse_block()
        return A.FuncDef(line=line, name=name,
                         return_type=ret if ret is not None else None,
                         params=params, body=body, static=static)

    def _finish_declarator(self, name: str, base: Type, ptr_depth: int,
                           line: int, is_global: bool, volatile: bool,
                           static: bool) -> A.VarDecl:
        ty: Type = base
        for _ in range(ptr_depth):
            ty = PointerType(ty)
        dims: List[int] = []
        while self._accept(T.LBRACKET):
            num = self._expect(T.NUMBER, "array extent")
            dims.append(int(num.text.rstrip("uUlL"), 0))
            self._expect(T.RBRACKET, "']'")
        if dims:
            ty = ArrayType(elem=ty, dims=tuple(dims))
        init = None
        if self._accept(T.ASSIGN):
            init = self._parse_initializer()
        return A.VarDecl(line=line, name=name, type=ty, init=init,
                         is_global=is_global, volatile=volatile,
                         static=static)

    def _parse_initializer(self):
        if self._accept(T.LBRACE):
            items = []
            if not self._check(T.RBRACE):
                while True:
                    items.append(self._parse_initializer())
                    if not self._accept(T.COMMA):
                        break
                    if self._check(T.RBRACE):
                        break  # trailing comma
            self._expect(T.RBRACE, "'}'")
            return items
        return self.parse_expr()

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> A.Block:
        lbrace = self._expect(T.LBRACE, "'{'")
        stmts: List[A.Stmt] = []
        while not self._check(T.RBRACE):
            if self._check(T.EOF):
                raise ParseError("unterminated block", lbrace.line)
            stmts.append(self.parse_stmt())
        self._expect(T.RBRACE, "'}'")
        return A.Block(line=lbrace.line, stmts=stmts)

    def parse_stmt(self) -> A.Stmt:
        """Parse one statement."""
        tok = self._peek()

        if tok.kind is T.LBRACE:
            return self._parse_block()
        if tok.kind is T.SEMI:
            self._advance()
            return A.Empty(line=tok.line)
        if tok.kind is T.KW_IF:
            return self._parse_if()
        if tok.kind is T.KW_FOR:
            return self._parse_for()
        if tok.kind is T.KW_WHILE:
            return self._parse_while()
        if tok.kind is T.KW_DO:
            return self._parse_do_while()
        if tok.kind is T.KW_RETURN:
            self._advance()
            value = None if self._check(T.SEMI) else self.parse_expr()
            self._expect(T.SEMI, "';'")
            return A.Return(line=tok.line, value=value)
        if tok.kind is T.KW_GOTO:
            self._advance()
            label = self._expect(T.IDENT, "label").text
            self._expect(T.SEMI, "';'")
            return A.Goto(line=tok.line, label=label)
        if tok.kind is T.KW_BREAK:
            self._advance()
            self._expect(T.SEMI, "';'")
            return A.Break(line=tok.line)
        if tok.kind is T.KW_CONTINUE:
            self._advance()
            self._expect(T.SEMI, "';'")
            return A.Continue(line=tok.line)
        if tok.kind is T.IDENT and self._peek(1).kind is T.COLON:
            self._advance()
            self._advance()
            inner = self.parse_stmt()
            return A.LabeledStmt(line=tok.line, label=tok.text, stmt=inner)
        if self._at_type():
            return self._parse_decl_stmt()

        expr = self.parse_expr()
        self._expect(T.SEMI, "';'")
        return A.ExprStmt(line=tok.line, expr=expr)

    def _parse_decl_stmt(self) -> A.DeclStmt:
        line = self._peek().line
        static = bool(self._accept(T.KW_STATIC))
        volatile = bool(self._accept(T.KW_VOLATILE))
        self._accept(T.KW_CONST)
        base = self._parse_base_type()
        if base is None:
            raise ParseError("variable of type void", line)
        decls: List[A.VarDecl] = []
        while True:
            ptr_depth = 0
            while self._accept(T.STAR):
                ptr_depth += 1
            ntok = self._expect(T.IDENT, "identifier")
            decls.append(
                self._finish_declarator(
                    ntok.text, base, ptr_depth, ntok.line,
                    is_global=False, volatile=volatile, static=static,
                )
            )
            if not self._accept(T.COMMA):
                break
        self._expect(T.SEMI, "';'")
        return A.DeclStmt(line=line, decls=decls)

    def _parse_if(self) -> A.If:
        line = self._expect(T.KW_IF).line
        self._expect(T.LPAREN, "'('")
        cond = self.parse_expr()
        self._expect(T.RPAREN, "')'")
        then = self.parse_stmt()
        other = None
        if self._accept(T.KW_ELSE):
            other = self.parse_stmt()
        return A.If(line=line, cond=cond, then=then, other=other)

    def _parse_for(self) -> A.For:
        line = self._expect(T.KW_FOR).line
        self._expect(T.LPAREN, "'('")
        init: Optional[A.Stmt] = None
        if not self._check(T.SEMI):
            if self._at_type():
                init = self._parse_decl_stmt()
            else:
                expr = self.parse_expr()
                self._expect(T.SEMI, "';'")
                init = A.ExprStmt(line=line, expr=expr)
        else:
            self._advance()
        cond = None if self._check(T.SEMI) else self.parse_expr()
        self._expect(T.SEMI, "';'")
        step = None if self._check(T.RPAREN) else self.parse_expr()
        self._expect(T.RPAREN, "')'")
        body = self.parse_stmt()
        return A.For(line=line, init=init, cond=cond, step=step, body=body)

    def _parse_while(self) -> A.While:
        line = self._expect(T.KW_WHILE).line
        self._expect(T.LPAREN, "'('")
        cond = self.parse_expr()
        self._expect(T.RPAREN, "')'")
        body = self.parse_stmt()
        return A.While(line=line, cond=cond, body=body)

    def _parse_do_while(self) -> A.DoWhile:
        line = self._expect(T.KW_DO).line
        body = self.parse_stmt()
        self._expect(T.KW_WHILE, "'while'")
        self._expect(T.LPAREN, "'('")
        cond = self.parse_expr()
        self._expect(T.RPAREN, "')'")
        self._expect(T.SEMI, "';'")
        return A.DoWhile(line=line, body=body, cond=cond)

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        """Parse an assignment-level expression."""
        return self._parse_assignment()

    def _parse_assignment(self) -> A.Expr:
        left = self._parse_conditional()
        tok = self._peek()
        if tok.kind in _ASSIGN_TOKENS:
            if not isinstance(left, (A.Ident, A.ArrayIndex, A.Unary)):
                raise ParseError("invalid assignment target", tok.line)
            if isinstance(left, A.Unary) and left.op != "*":
                raise ParseError("invalid assignment target", tok.line)
            self._advance()
            value = self._parse_assignment()
            return A.Assign(line=left.line, target=left, value=value,
                            op=_ASSIGN_TOKENS[tok.kind])
        return left

    def _parse_conditional(self) -> A.Expr:
        cond = self._parse_binary(1)
        if self._accept(T.QUESTION):
            then = self.parse_expr()
            self._expect(T.COLON, "':'")
            other = self._parse_conditional()
            return A.Conditional(line=cond.line, cond=cond, then=then,
                                 other=other)
        return cond

    def _parse_binary(self, min_prec: int) -> A.Expr:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            op = _BINOP_TOKENS.get(tok.kind)
            if op is None or _PRECEDENCE[op] < min_prec:
                return left
            self._advance()
            right = self._parse_binary(_PRECEDENCE[op] + 1)
            left = A.Binary(line=left.line, op=op, left=left, right=right)

    def _parse_unary(self) -> A.Expr:
        tok = self._peek()
        unary_map = {
            T.MINUS: "-", T.BANG: "!", T.TILDE: "~",
            T.AMP: "&", T.STAR: "*",
        }
        if tok.kind is T.PLUS:
            self._advance()
            return self._parse_unary()
        if tok.kind in unary_map:
            self._advance()
            operand = self._parse_unary()
            return A.Unary(line=tok.line, op=unary_map[tok.kind],
                           operand=operand, prefix=True)
        if tok.kind in (T.PLUSPLUS, T.MINUSMINUS):
            self._advance()
            operand = self._parse_unary()
            op = "++" if tok.kind is T.PLUSPLUS else "--"
            return A.Unary(line=tok.line, op=op, operand=operand, prefix=True)
        return self._parse_postfix()

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.kind is T.LBRACKET:
                self._advance()
                index = self.parse_expr()
                self._expect(T.RBRACKET, "']'")
                expr = A.ArrayIndex(line=expr.line, base=expr, index=index)
            elif tok.kind in (T.PLUSPLUS, T.MINUSMINUS):
                self._advance()
                op = "++" if tok.kind is T.PLUSPLUS else "--"
                expr = A.Unary(line=expr.line, op=op, operand=expr,
                               prefix=False)
            else:
                return expr

    def _parse_primary(self) -> A.Expr:
        tok = self._peek()
        if tok.kind is T.NUMBER:
            self._advance()
            return A.IntLit(line=tok.line,
                            value=int(tok.text.rstrip("uUlL"), 0))
        if tok.kind is T.IDENT:
            self._advance()
            if self._check(T.LPAREN):
                self._advance()
                args: List[A.Expr] = []
                if not self._check(T.RPAREN):
                    while True:
                        args.append(self.parse_expr())
                        if not self._accept(T.COMMA):
                            break
                self._expect(T.RPAREN, "')'")
                return A.Call(line=tok.line, name=tok.text, args=args)
            return A.Ident(line=tok.line, name=tok.text)
        if tok.kind is T.LPAREN:
            self._advance()
            expr = self.parse_expr()
            self._expect(T.RPAREN, "')'")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.line)


def parse(source: str) -> A.Program:
    """Parse mini-C ``source`` text into a :class:`Program`."""
    return Parser(tokenize(source)).parse_program()


def parse_expr(source: str) -> A.Expr:
    """Parse a single expression (used by tests and the reducer)."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expr()
    parser._expect(T.EOF, "end of input")
    return expr
