"""Type model for the mini-C language.

The language deliberately covers the type constructs that appear in the
paper's test programs and reported bugs: sized integer types (``char``,
``short``, ``int``, ``long``) with optional unsignedness, pointers
(including pointer-to-pointer, as in the Conjecture 3 example), and
multi-dimensional arrays (as in the Conjecture 2 LSR example).

All run-time arithmetic in the VM is performed on Python integers and
wrapped to the declared width on store, which keeps semantics deterministic
and free of C's undefined-overflow subtleties; the *declared* type still
matters for printing, for sizing storage, and for wrapping behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class Type:
    """Base class for all mini-C types."""

    def sizeof(self) -> int:
        """Size of a value of this type, in abstract words."""
        raise NotImplementedError

    def c_name(self) -> str:
        """The C-like spelling of this type (for the printer)."""
        raise NotImplementedError


@dataclass(frozen=True)
class IntType(Type):
    """A sized integer type such as ``int`` or ``unsigned short``."""

    name: str = "int"
    bits: int = 32
    signed: bool = True

    def sizeof(self) -> int:
        return 1

    def c_name(self) -> str:
        if self.signed:
            return self.name
        return f"unsigned {self.name}"

    def wrap(self, value: int) -> int:
        """Wrap ``value`` to this type's width and signedness."""
        mask = (1 << self.bits) - 1
        value &= mask
        if self.signed and value >= (1 << (self.bits - 1)):
            value -= 1 << self.bits
        return value


@dataclass(frozen=True)
class PointerType(Type):
    """A pointer to another type (``int *``, ``int **`` ...)."""

    base: Type = field(default_factory=IntType)

    def sizeof(self) -> int:
        return 1

    def c_name(self) -> str:
        return f"{self.base.c_name()} *"

    def depth(self) -> int:
        """Pointer indirection depth (``int **`` has depth 2)."""
        if isinstance(self.base, PointerType):
            return 1 + self.base.depth()
        return 1


@dataclass(frozen=True)
class ArrayType(Type):
    """A (possibly multi-dimensional) array with constant extents."""

    elem: Type = field(default_factory=IntType)
    dims: Tuple[int, ...] = (1,)

    def sizeof(self) -> int:
        total = self.elem.sizeof()
        for d in self.dims:
            total *= d
        return total

    def c_name(self) -> str:
        return self.elem.c_name() + "".join(f"[{d}]" for d in self.dims)

    def flat_index(self, indices: Tuple[int, ...]) -> int:
        """Row-major flattening of a full index tuple; raises on OOB."""
        if len(indices) != len(self.dims):
            raise ValueError(
                f"array of rank {len(self.dims)} indexed with "
                f"{len(indices)} subscripts"
            )
        flat = 0
        for idx, dim in zip(indices, self.dims):
            if not 0 <= idx < dim:
                raise IndexError(f"index {idx} out of bounds for dim {dim}")
            flat = flat * dim + idx
        return flat


#: Canonical integer types used throughout the generator and tests.
CHAR = IntType("char", 8, True)
UCHAR = IntType("char", 8, False)
SHORT = IntType("short", 16, True)
USHORT = IntType("short", 16, False)
INT = IntType("int", 32, True)
UINT = IntType("int", 32, False)
LONG = IntType("long", 64, True)
ULONG = IntType("long", 64, False)

#: All scalar integer types, indexable by (name, signed).
INT_TYPES = {
    ("char", True): CHAR,
    ("char", False): UCHAR,
    ("short", True): SHORT,
    ("short", False): USHORT,
    ("int", True): INT,
    ("int", False): UINT,
    ("long", True): LONG,
    ("long", False): ULONG,
}


def is_integer(ty: Type) -> bool:
    """True for any :class:`IntType`."""
    return isinstance(ty, IntType)


def is_pointer(ty: Type) -> bool:
    """True for any :class:`PointerType`."""
    return isinstance(ty, PointerType)


def is_array(ty: Type) -> bool:
    """True for any :class:`ArrayType`."""
    return isinstance(ty, ArrayType)
