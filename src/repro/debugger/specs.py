"""Picklable debugger construction specs.

Debuggers are stateless objects distinguished only by their class (the
DWARF-consumption knobs are class attributes), so a spec is just the
registered name. Workers in spawned processes rebuild the debugger from
the name instead of unpickling a live instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Type

from .base import Debugger
from .gdb_like import GdbLike
from .lldb_like import LldbLike

#: name -> class, for every shipped debugger (the base engine included,
#: so defect-free tracing is also spec-able).
DEBUGGER_REGISTRY: Dict[str, Type[Debugger]] = {
    Debugger.name: Debugger,
    GdbLike.name: GdbLike,
    LldbLike.name: LldbLike,
}


@dataclass(frozen=True)
class DebuggerSpec:
    """A picklable recipe for rebuilding a :class:`Debugger`."""

    name: str = GdbLike.name

    def __post_init__(self) -> None:
        if self.name not in DEBUGGER_REGISTRY:
            raise ValueError(
                f"unknown debugger {self.name!r}; "
                f"known: {', '.join(sorted(DEBUGGER_REGISTRY))}")

    def build(self) -> Debugger:
        return DEBUGGER_REGISTRY[self.name]()


def spec_for(debugger: Debugger) -> DebuggerSpec:
    """The spec that rebuilds ``debugger`` (by registered name)."""
    registered = DEBUGGER_REGISTRY.get(debugger.name)
    if registered is not type(debugger):
        raise ValueError(
            f"debugger {type(debugger).__name__} is not registered under "
            f"its name {debugger.name!r}; register it in "
            "repro.debugger.specs.DEBUGGER_REGISTRY to shard with it")
    return DebuggerSpec(name=debugger.name)
