"""The lldb-like debugger.

Models lldb's DWARF consumption, including the lldb defect the paper
reported:

* **bug 50076** — a variable whose location/const-value information
  appears only in the *abstract origin* of a ``DW_TAG_inlined_subroutine``
  is not displayed: lldb does not merge the abstract DIE's location into
  the concrete instance (gdb does).

lldb is tolerant of the structural quirks gdb chokes on: it scans past
empty location-list ranges and recurses into concrete-only lexical blocks.
"""

from __future__ import annotations

from .base import Debugger


class LldbLike(Debugger):
    """lldb-flavoured DWARF consumer."""

    name = "lldb-like"
    follows_abstract_origin_for_location = False  # bug 50076
    tolerates_concrete_only_blocks = True
    tolerates_empty_loclist_entries = True
