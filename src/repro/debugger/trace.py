"""Debugger trace format.

A :class:`DebugTrace` is what conjecture checkers and the quantitative
study consume: for every source line visited (first visit only, per the
paper's one-shot-breakpoint methodology), the set of variables the
debugger showed in the frame and their availability status.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

AVAILABLE = "available"
OPTIMIZED_OUT = "optimized_out"

_RANK = {OPTIMIZED_OUT: 1, AVAILABLE: 2}


@dataclass
class VarReport:
    """One variable as presented by the debugger at a stop."""

    name: str
    status: str  # AVAILABLE | OPTIMIZED_OUT
    value: Optional[int] = None
    is_global: bool = False

    @property
    def available(self) -> bool:
        return self.status == AVAILABLE

    def rank(self) -> int:
        """Availability rank: higher = more information (missing = 0)."""
        return _RANK.get(self.status, 0)


@dataclass
class LineVisit:
    """The debugger's view at the first stop on one source line."""

    line: int
    pc: int
    function: str
    #: variables shown in the frame; a source variable absent from this
    #: mapping was *missing* (no DIE / not in the presented frame)
    variables: Dict[str, VarReport] = field(default_factory=dict)

    def status_of(self, name: str) -> str:
        """AVAILABLE / OPTIMIZED_OUT / "missing" for a variable name."""
        report = self.variables.get(name)
        return report.status if report is not None else "missing"

    def rank_of(self, name: str) -> int:
        report = self.variables.get(name)
        return report.rank() if report is not None else 0

    def value_of(self, name: str) -> Optional[int]:
        report = self.variables.get(name)
        return report.value if report is not None else None


@dataclass
class DebugTrace:
    """A full debugging session over one executable."""

    debugger: str = ""
    visits: List[LineVisit] = field(default_factory=list)
    exit_code: int = 0

    def stepped_lines(self) -> Set[int]:
        return {v.line for v in self.visits}

    def visit_for_line(self, line: int) -> Optional[LineVisit]:
        for visit in self.visits:
            if visit.line == line:
                return visit
        return None

    def visits_in_order(self) -> List[LineVisit]:
        return list(self.visits)
