"""The gdb-like debugger.

Models gdb's DWARF consumption, including the two gdb defects the paper
reported:

* **bug 28987** — a location list containing an empty range entry
  (``lo == hi``) derails list processing, so the variable cannot be
  displayed even though later entries cover the PC (lldb handles this);
* **bug 29060** — when the concrete tree of an inlined subroutine contains
  a lexical block absent from the abstract origin, gdb fails to match the
  structures and does not display the variables inside the block.

gdb *does* correctly merge abstract-origin attributes into concrete
inlined variables (the case lldb gets wrong, bug 50076).
"""

from __future__ import annotations

from .base import Debugger


class GdbLike(Debugger):
    """gdb-flavoured DWARF consumer."""

    name = "gdb-like"
    follows_abstract_origin_for_location = True
    tolerates_concrete_only_blocks = False   # bug 29060
    tolerates_empty_loclist_entries = False  # bug 28987
