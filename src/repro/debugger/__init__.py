"""Source-level debuggers: stepping engine, traces, gdb/lldb consumers."""

from .trace import (
    AVAILABLE, OPTIMIZED_OUT, DebugTrace, LineVisit, VarReport,
)
from .base import Debugger, trace_all
from .gdb_like import GdbLike
from .lldb_like import LldbLike
from .specs import DEBUGGER_REGISTRY, DebuggerSpec, spec_for

#: The reference debugger of each compiler family (Section 4.2).
NATIVE_DEBUGGERS = {"gcc": GdbLike, "clang": LldbLike}
