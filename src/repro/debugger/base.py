"""Source-level debugger engine.

Implements the paper's tracing methodology (Section 4.2): place a one-shot
breakpoint at the first address of every source line that has line-table
rows, run the program, and at each stop record the variables the debugger
presents for the current frame together with their values.

The two shipped debuggers (:class:`~repro.debugger.gdb_like.GdbLike`,
:class:`~repro.debugger.lldb_like.LldbLike`) share this engine and differ
only in how they *consume* DWARF — abstract-origin following, lexical
block recursion, and location-list traversal — which is where the paper's
three debugger bugs live.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..debuginfo.die import DIE, TAG_INLINED_SUBROUTINE, TAG_LEXICAL_BLOCK
from ..debuginfo.location import (
    AddrLoc, ConstLoc, ExprLoc, FrameAddrVal, FrameExprLoc, FrameLoc,
    GlobalAddrVal, Loc, LocationList, RegLoc,
)
from ..ir.ops import UBError, wrap
from ..target.isa import Executable
from ..target.vm import VM
from .trace import AVAILABLE, OPTIMIZED_OUT, DebugTrace, LineVisit, VarReport


class Debugger:
    """Base debugger; subclasses override the DWARF-consumption quirks."""

    name = "debugger"

    # -- DWARF consumption knobs (overridden by subclasses) ----------------

    #: follow DW_AT_abstract_origin when the concrete DIE lacks location
    follows_abstract_origin_for_location = True
    #: recurse into lexical blocks nested in inlined subroutines even when
    #: the abstract origin has no matching block
    tolerates_concrete_only_blocks = True
    #: keep scanning a location list past an empty (lo == hi) entry
    tolerates_empty_loclist_entries = True

    # -- tracing ---------------------------------------------------------------

    def trace(self, exe: Executable, fuel: int = 2_000_000) -> DebugTrace:
        """Debug ``exe``: one-shot breakpoint per steppable line."""
        trace = DebugTrace(debugger=self.name)
        # A line can start several instruction runs (loop copies, the
        # standalone body of an inlined function); like gdb, plant a
        # breakpoint at each run start and keep the first *hit* per line.
        line_addrs = {}
        for line, addrs in exe.line_table.breakpoint_addrs().items():
            for addr in addrs:
                line_addrs[addr] = line
        vm = VM(exe, fuel=fuel)
        breakpoints = set(line_addrs)
        seen_lines = set()

        def on_break(vm_state: VM) -> None:
            pc = vm_state.pc
            line = line_addrs.get(pc)
            vm_state.breakpoints.discard(pc)  # one-shot
            if line is None or line in seen_lines:
                return
            seen_lines.add(line)
            visit = self._observe(exe, vm_state, pc, line)
            trace.visits.append(visit)

        result = vm.run(breakpoints=breakpoints, on_break=on_break)
        trace.exit_code = result.exit_code
        return trace

    # -- frame inspection ---------------------------------------------------------

    def _observe(self, exe: Executable, vm: VM, pc: int,
                 line: int) -> LineVisit:
        unit = exe.debug
        chain = unit.scope_chain_at(pc)
        function = chain[0].name if chain else "?"
        visit = LineVisit(line=line, pc=pc, function=function)

        for die in self._frame_variable_dies(unit, pc):
            name = die.name
            if name is None or name in visit.variables:
                continue
            start = die.attrs.get("scope_start")
            end = die.attrs.get("scope_end")
            if start is not None and end is not None and \
                    not (start <= line <= end):
                continue
            visit.variables[name] = self._report(die, vm, pc)

        # Globals are always in scope.
        for die in unit.root.children:
            if die.is_variable() and die.attrs.get("global"):
                if die.name not in visit.variables:
                    report = self._report(die, vm, pc)
                    report.is_global = True
                    visit.variables[die.name] = report
        return visit

    def _frame_variable_dies(self, unit, pc: int) -> List[DIE]:
        """Variable DIEs of the innermost frame at ``pc``.

        When stopped inside an inlined subroutine, debuggers present the
        inline frame: its variables come from the inlined_subroutine DIE.
        Otherwise the subprogram's (and its lexical blocks') variables are
        shown.
        """
        chain = unit.scope_chain_at(pc)
        if not chain:
            return []
        frame_scope = chain[0]
        out: List[DIE] = []

        def collect(scope: DIE, inside_inline: bool) -> None:
            for child in scope.children:
                if child.is_variable():
                    out.append(child)
                elif child.tag == TAG_LEXICAL_BLOCK:
                    if child.attrs.get("synthetic") and inside_inline and \
                            not self.tolerates_concrete_only_blocks:
                        # gdb bug 29060: concrete structure diverges from
                        # the abstract origin; variables inside are lost.
                        continue
                    if child.pc_in_scope(pc):
                        collect(child, inside_inline)
                # nested inlined subroutines are separate frames: skip

        collect(frame_scope,
                frame_scope.tag == TAG_INLINED_SUBROUTINE)
        return out

    # -- value resolution --------------------------------------------------------

    def _effective_location(self, die: DIE) -> Optional[LocationList]:
        loclist = die.location
        if loclist is not None:
            return loclist
        if self.follows_abstract_origin_for_location:
            origin = die.abstract_origin
            if origin is not None:
                return origin.location
        return None

    def _effective_const(self, die: DIE) -> Optional[int]:
        if die.const_value is not None:
            return die.const_value
        if self.follows_abstract_origin_for_location:
            origin = die.abstract_origin
            if origin is not None:
                return origin.const_value
        return None

    def _lookup_loc(self, loclist: LocationList, pc: int) -> Optional[Loc]:
        for entry in loclist.entries:
            if entry.empty and not self.tolerates_empty_loclist_entries:
                # gdb bug 28987: an empty range derails list processing.
                return None
            if entry.covers(pc):
                return entry.loc
        return None

    def _report(self, die: DIE, vm: VM, pc: int) -> VarReport:
        loclist = self._effective_location(die)
        if loclist is not None:
            loc = self._lookup_loc(loclist, pc)
            if loc is not None:
                try:
                    value = self._evaluate(loc, vm)
                except UBError:
                    return VarReport(die.name, OPTIMIZED_OUT)
                return VarReport(die.name, AVAILABLE, value)
        const = self._effective_const(die)
        if const is not None:
            return VarReport(die.name, AVAILABLE, wrap(const))
        return VarReport(die.name, OPTIMIZED_OUT)

    def _evaluate(self, loc: Loc, vm: VM) -> int:
        if isinstance(loc, RegLoc):
            return vm.frame.regs[loc.reg]
        if isinstance(loc, FrameLoc):
            return vm.memory.load(vm.frame.frame_base + loc.offset)
        if isinstance(loc, AddrLoc):
            return vm.memory.load(loc.addr)
        if isinstance(loc, ConstLoc):
            return wrap(loc.value)
        if isinstance(loc, FrameAddrVal):
            return vm.frame.frame_base + loc.offset
        if isinstance(loc, GlobalAddrVal):
            return loc.addr
        if isinstance(loc, ExprLoc):
            return wrap(loc.evaluate(vm.frame.regs[loc.reg]))
        if isinstance(loc, FrameExprLoc):
            base = vm.memory.load(vm.frame.frame_base + loc.offset)
            return wrap(loc.evaluate(base))
        raise TypeError(f"unknown location {loc!r}")
