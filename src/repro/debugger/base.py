"""Source-level debugger engine.

Implements the paper's tracing methodology (Section 4.2): place a one-shot
breakpoint at the first address of every source line that has line-table
rows, run the program, and at each stop record the variables the debugger
presents for the current frame together with their values.

The two shipped debuggers (:class:`~repro.debugger.gdb_like.GdbLike`,
:class:`~repro.debugger.lldb_like.LldbLike`) share this engine and differ
only in how they *consume* DWARF — abstract-origin following, lexical
block recursion, and location-list traversal — which is where the paper's
three debugger bugs live.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..debuginfo.die import DIE, TAG_INLINED_SUBROUTINE, TAG_LEXICAL_BLOCK
from ..debuginfo.location import (
    AddrLoc, ConstLoc, ExprLoc, FrameAddrVal, FrameExprLoc, FrameLoc,
    GlobalAddrVal, Loc, LocationList, RegLoc,
)
from ..ir.ops import UBError, wrap
from ..target.isa import Executable
from ..target.vm import VM
from .trace import AVAILABLE, OPTIMIZED_OUT, DebugTrace, LineVisit, VarReport


class Debugger:
    """Base debugger; subclasses override the DWARF-consumption quirks."""

    name = "debugger"

    # -- DWARF consumption knobs (overridden by subclasses) ----------------

    #: follow DW_AT_abstract_origin when the concrete DIE lacks location
    follows_abstract_origin_for_location = True
    #: recurse into lexical blocks nested in inlined subroutines even when
    #: the abstract origin has no matching block
    tolerates_concrete_only_blocks = True
    #: keep scanning a location list past an empty (lo == hi) entry
    tolerates_empty_loclist_entries = True

    # -- tracing ---------------------------------------------------------------

    def trace(self, exe: Executable, fuel: int = 2_000_000) -> DebugTrace:
        """Debug ``exe``: one-shot breakpoint per steppable line."""
        return trace_all(exe, [self], fuel=fuel)[0]

    # -- frame inspection ---------------------------------------------------------

    def _observe(self, exe: Executable, vm: VM, pc: int,
                 line: int) -> LineVisit:
        unit = exe.debug
        chain = self._scope_chain(unit, pc)
        function = chain[0].name if chain else "?"
        visit = LineVisit(line=line, pc=pc, function=function)

        variables = visit.variables
        if chain:
            for die, name, start, end, guards in \
                    self._scope_variable_entries(unit, chain[0]):
                if name is None or name in variables:
                    continue
                if start is not None and end is not None and \
                        not (start <= line <= end):
                    continue
                if guards and not all(
                        any(lo <= pc < hi for lo, hi in ranges)
                        for ranges in guards):
                    continue
                variables[name] = self._report(die, vm, pc, unit)

        # Globals are always in scope.
        for die in unit.global_variable_dies():
            if die.name not in variables:
                report = self._report(die, vm, pc, unit)
                report.is_global = True
                variables[die.name] = report
        return visit

    @staticmethod
    def _scope_chain(unit, pc: int) -> List[DIE]:
        """``unit.scope_chain_at`` memoized per pc on the unit.

        Breakpoint pcs repeat across stops and across debuggers tracing
        the same executable (the matrix driver's compile-sharing), and
        the chain is pure tree structure — quirk-independent.
        """
        key = ("chain", pc)
        chain = unit.consumer_cache.get(key)
        if chain is None:
            chain = unit.consumer_cache[key] = unit.scope_chain_at(pc)
        return chain

    def _scope_variable_entries(self, unit, frame_scope: DIE):
        """(die, name, scope_start, scope_end, guard ranges) tuples for
        one frame scope.

        The debugger used to rebuild this list — a recursive walk over
        the scope's DIE subtree plus attribute lookups per variable — at
        *every* stop.  The walk's outcome depends on the stop pc only
        through the pc ranges of intervening lexical blocks, so the walk
        runs once per (scope, quirk); each entry carries the variable's
        static attributes and the range guards to test against the pc.
        The gdb bug 29060 skip (synthetic concrete-only blocks inside
        inline frames) is pc-independent and is folded in at build time,
        hence the quirk in the cache key.
        """
        key = ("vars", frame_scope.die_id,
               self.tolerates_concrete_only_blocks)
        entries = unit.consumer_cache.get(key)
        if entries is None:
            entries = []

            def collect(scope: DIE, inside_inline: bool,
                        guards: tuple) -> None:
                for child in scope.children:
                    if child.is_variable():
                        attrs = child.attrs
                        entries.append(
                            (child, attrs.get("name"),
                             attrs.get("scope_start"),
                             attrs.get("scope_end"), guards))
                    elif child.tag == TAG_LEXICAL_BLOCK:
                        if child.attrs.get("synthetic") and \
                                inside_inline and \
                                not self.tolerates_concrete_only_blocks:
                            # gdb bug 29060: concrete structure diverges
                            # from the abstract origin; variables inside
                            # are lost.
                            continue
                        ranges = child.ranges
                        # A rangeless block covers its parent's extent:
                        # no guard to test.
                        collect(child, inside_inline,
                                guards + (tuple(ranges),) if ranges
                                else guards)
                    # nested inlined subroutines are separate frames: skip

            collect(frame_scope,
                    frame_scope.tag == TAG_INLINED_SUBROUTINE, ())
            unit.consumer_cache[key] = entries
        return entries

    # -- value resolution --------------------------------------------------------

    def _effective_location(self, die: DIE) -> Optional[LocationList]:
        loclist = die.location
        if loclist is not None:
            return loclist
        if self.follows_abstract_origin_for_location:
            origin = die.abstract_origin
            if origin is not None:
                return origin.location
        return None

    def _effective_const(self, die: DIE) -> Optional[int]:
        if die.const_value is not None:
            return die.const_value
        if self.follows_abstract_origin_for_location:
            origin = die.abstract_origin
            if origin is not None:
                return origin.const_value
        return None

    def _lookup_loc(self, loclist: LocationList, pc: int) -> Optional[Loc]:
        if self.tolerates_empty_loclist_entries:
            return loclist.lookup(pc)
        # gdb bug 28987: an empty range derails list processing — only
        # the entries before the first empty one are consulted.
        return loclist.lookup_before_empty(pc)

    def _effective_die_data(self, die: DIE, unit=None):
        """(location list, const value) after abstract-origin merging.

        Pure DIE structure plus the follow-origin quirk — pc-independent
        — so it is resolved once per (die, quirk) when a unit cache is
        available (every stop re-derived it before).
        """
        if unit is None:
            return (self._effective_location(die),
                    self._effective_const(die))
        key = ("loc", die.die_id,
               self.follows_abstract_origin_for_location)
        data = unit.consumer_cache.get(key)
        if data is None:
            data = unit.consumer_cache[key] = (
                self._effective_location(die),
                self._effective_const(die))
        return data

    def _report(self, die: DIE, vm: VM, pc: int, unit=None) -> VarReport:
        loclist, const = self._effective_die_data(die, unit)
        if loclist is not None:
            loc = self._lookup_loc(loclist, pc)
            if loc is not None:
                try:
                    value = _EVALUATE[type(loc)](self, loc, vm)
                except UBError:
                    return VarReport(die.name, OPTIMIZED_OUT)
                except KeyError:
                    raise TypeError(f"unknown location {loc!r}") from None
                return VarReport(die.name, AVAILABLE, value)
        if const is not None:
            return VarReport(die.name, AVAILABLE, wrap(const))
        return VarReport(die.name, OPTIMIZED_OUT)

    def _evaluate(self, loc: Loc, vm: VM) -> int:
        """Evaluate one location description against the stopped VM."""
        try:
            return _EVALUATE[type(loc)](self, loc, vm)
        except KeyError:
            raise TypeError(f"unknown location {loc!r}") from None

    def _eval_reg(self, loc: RegLoc, vm: VM) -> int:
        return vm.frame.regs[loc.reg]

    def _eval_frame(self, loc: FrameLoc, vm: VM) -> int:
        return vm.memory.load(vm.frame.frame_base + loc.offset)

    def _eval_addr(self, loc: AddrLoc, vm: VM) -> int:
        return vm.memory.load(loc.addr)

    def _eval_const(self, loc: ConstLoc, vm: VM) -> int:
        return wrap(loc.value)

    def _eval_frame_addr_val(self, loc: FrameAddrVal, vm: VM) -> int:
        return vm.frame.frame_base + loc.offset

    def _eval_global_addr_val(self, loc: GlobalAddrVal, vm: VM) -> int:
        return loc.addr

    def _eval_expr(self, loc: ExprLoc, vm: VM) -> int:
        return wrap(loc.evaluate(vm.frame.regs[loc.reg]))

    def _eval_frame_expr(self, loc: FrameExprLoc, vm: VM) -> int:
        base = vm.memory.load(vm.frame.frame_base + loc.offset)
        return wrap(loc.evaluate(base))


#: location type -> unbound evaluator; built once at import time.
_EVALUATE = {
    RegLoc: Debugger._eval_reg,
    FrameLoc: Debugger._eval_frame,
    AddrLoc: Debugger._eval_addr,
    ConstLoc: Debugger._eval_const,
    FrameAddrVal: Debugger._eval_frame_addr_val,
    GlobalAddrVal: Debugger._eval_global_addr_val,
    ExprLoc: Debugger._eval_expr,
    FrameExprLoc: Debugger._eval_frame_expr,
}


def trace_all(exe: Executable, debuggers: Sequence[Debugger],
              fuel: int = 2_000_000) -> List[DebugTrace]:
    """Trace one executable in several debuggers over **one** execution.

    The stepping methodology (Section 4.2) is engine-level: every
    debugger plants the same one-shot breakpoints — the first address of
    each line-table run — so all consumers stop at exactly the same pcs
    with exactly the same machine state.  Only the *DWARF consumption*
    at a stop differs per debugger.  Running the debuggee once and
    letting every consumer observe each stop is therefore bit-identical
    to tracing it once per debugger (pinned by the differential tests),
    and is what makes the matrix driver's compile-sharing pay twice:
    one compile *and* one execution per (family, version, level) cell.
    """
    # A line can start several instruction runs (loop copies, the
    # standalone body of an inlined function); like gdb, plant a
    # breakpoint at each run start and keep the first *hit* per line.
    line_addrs = {}
    for line, addrs in exe.line_table.breakpoint_addrs().items():
        for addr in addrs:
            line_addrs[addr] = line
    vm = VM(exe, fuel=fuel)
    traces = [DebugTrace(debugger=d.name) for d in debuggers]
    seen_lines = [set() for _ in debuggers]

    def on_break(vm_state: VM) -> None:
        pc = vm_state.pc
        line = line_addrs.get(pc)
        vm_state.breakpoints.discard(pc)  # one-shot
        if line is None:
            return
        for debugger, trace, seen in zip(debuggers, traces, seen_lines):
            if line in seen:
                continue
            seen.add(line)
            trace.visits.append(
                debugger._observe(exe, vm_state, pc, line))

    result = vm.run(breakpoints=set(line_addrs), on_break=on_break)
    for trace in traces:
        trace.exit_code = result.exit_code
    return traces
