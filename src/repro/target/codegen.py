"""Codegen + link: lower an IR module to the target ISA and materialize
debug information.

:func:`link` is the last toolchain stage the compiler driver runs.  It

* lays out every function as one linear run of machine instructions and
  resolves intra-function branch targets;
* assigns frame offsets to stack slots (in the same order the reference
  interpreter does, so both backends agree on symbolic object names) and
  absolute addresses to globals (via
  :func:`~repro.ir.interp.assign_global_addresses`);
* emits one line-table row per machine instruction that carries a source
  line — address-monotone by construction;
* converts the debug intrinsics flowing in the instruction stream into
  DWARF-analogue data: ``DbgDeclare`` opens a frame-slot location for the
  rest of the function, ``DbgValue`` closes the variable's previous
  location range and opens a new one (register, constant, address, or
  salvaged expression), ``DbgValue(None)`` is a kill;
* builds the compile-unit DIE tree: a ``subprogram`` per function,
  ``inlined_subroutine`` DIEs (with ``ranges`` and abstract origins) for
  every :class:`~repro.ir.instructions.InlineScope` the optimizer left in
  the stream, and ``variable``/``formal_parameter`` DIEs carrying the
  location lists.

Producer-side defect hook points (see :mod:`repro.bugs.catalog`):

* ``codegen.drop_die`` — the variable DIE is not emitted at all
  (**Missing DIE**, clang 49546/49580/51780/55115);
* ``codegen.keep_empty_entries`` — the location list is emitted without
  normalization, keeping empty ``lo == hi`` entries (**Incorrect DIE**
  structure; triggers gdb bug 28987 in the consumer);
* ``codegen.concrete_lexical_block`` — an inlined variable is wrapped in
  a synthetic lexical block absent from the abstract origin (triggers gdb
  bug 29060);
* ``codegen.abstract_only_location`` — the location list is attached to
  the abstract origin instead of the concrete inlined DIE (triggers lldb
  bug 50076).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.symbols import Symbol
from ..debuginfo.die import (
    DIE, DebugInfoUnit, TAG_FORMAL_PARAMETER, TAG_INLINED_SUBROUTINE,
    TAG_LEXICAL_BLOCK, TAG_SUBPROGRAM, TAG_VARIABLE,
)
from ..debuginfo.linetable import LineTable
from ..debuginfo.location import (
    AddrLoc, ConstLoc, ExprLoc, FrameAddrVal, FrameLoc, GlobalAddrVal, Loc,
    LocationList, RegLoc,
)
from ..ir.instructions import (
    BinOp, Branch, Call, DbgDeclare, DbgValue, InlineScope, Instr, Jump,
    Load, Move, Ret, Store, UnOp,
)
from ..ir.interp import assign_global_addresses
from ..ir.module import Function, Module
from ..ir.ops import wrap
from ..ir.values import AffineExpr, Const, GlobalRef, SlotRef, VReg
from .isa import (
    Executable, FrameSlotInfo, FuncInfo, GlobalLayout, MBin, MBranch, MCall,
    MFrameAddr, MGlobalAddr, MImm, MInstr, MJump, MLoad, MMove, MReg, MRet,
    MStore, MUn,
)


class LinkError(Exception):
    """Raised when a module cannot be linked into an executable."""


class _NullHooks:
    """No active defects (``-O0`` or a defect-free build)."""

    def fires(self, point: str, **ctx) -> bool:
        return False


def _ranges_from_addrs(addrs: Set[int]) -> List[Tuple[int, int]]:
    """Collapse an address set into sorted half-open [lo, hi) runs."""
    out: List[Tuple[int, int]] = []
    for addr in sorted(addrs):
        if out and out[-1][1] == addr:
            out[-1] = (out[-1][0], addr + 1)
        else:
            out.append((addr, addr + 1))
    return out


class _FunctionEmitter:
    """Emits one function's code, line rows, and debug events."""

    def __init__(self, fn: Function, code: List[MInstr],
                 line_table: LineTable, global_addr: Dict[str, int]):
        self.fn = fn
        self.code = code
        self.line_table = line_table
        self.global_addr = global_addr
        self.reg_map: Dict[VReg, int] = {}
        self.slot_offsets: Dict[int, int] = {}
        self.block_addrs: Dict[int, int] = {}
        #: (machine instr, attr name, IR block) branch fixups
        self.fixups: List[Tuple[MInstr, str, object]] = []
        #: symbol -> ordered (finalized entries, open (lo, Loc) or None)
        self.loc_events: Dict[Symbol, List] = {}
        self.open_loc: Dict[Symbol, Optional[Tuple[int, Loc]]] = {}
        self.symbol_order: List[Symbol] = []
        #: scope_id -> addresses covered (an instruction covers its whole
        #: inline-scope chain)
        self.scope_addrs: Dict[int, Set[int]] = {}
        self.scopes: Dict[int, InlineScope] = {}
        self.pending_dbg: List[Instr] = []
        self.low_pc = 0
        self.high_pc = 0
        self.decl_line: Optional[int] = None

    # -- mapping helpers ----------------------------------------------------

    def reg(self, vreg: VReg) -> int:
        phys = self.reg_map.get(vreg)
        if phys is None:
            phys = len(self.reg_map)
            self.reg_map[vreg] = phys
        return phys

    def operand(self, op):
        if isinstance(op, Const):
            return MImm(wrap(op.value))
        if isinstance(op, VReg):
            return MReg(self.reg(op))
        if isinstance(op, SlotRef):
            return MFrameAddr(self.slot_offsets[op.slot_id] + op.offset)
        if isinstance(op, GlobalRef):
            return MGlobalAddr(self.global_addr[op.name] + op.offset,
                               op.name)
        raise LinkError(f"cannot lower operand {op!r}")

    def dbg_loc(self, value) -> Optional[Loc]:
        """The location description a DbgValue operand denotes."""
        if isinstance(value, VReg):
            return RegLoc(self.reg(value))
        if isinstance(value, Const):
            return ConstLoc(wrap(value.value))
        if isinstance(value, SlotRef):
            return FrameAddrVal(
                self.slot_offsets[value.slot_id] + value.offset)
        if isinstance(value, GlobalRef):
            return GlobalAddrVal(
                self.global_addr[value.name] + value.offset)
        if isinstance(value, AffineExpr):
            return ExprLoc(reg=self.reg(value.vreg), mul=value.mul,
                           add=value.add, div=value.div)
        return None

    # -- debug event stream --------------------------------------------------

    def _note_symbol(self, sym: Symbol) -> None:
        if sym not in self.open_loc:
            self.open_loc[sym] = None
            self.loc_events[sym] = []
            self.symbol_order.append(sym)

    def _close(self, sym: Symbol, addr: int) -> None:
        open_entry = self.open_loc.get(sym)
        if open_entry is not None:
            lo, loc = open_entry
            self.loc_events[sym].append((lo, addr, loc))
            self.open_loc[sym] = None

    def _flush_dbg(self, addr: int) -> None:
        """Anchor pending debug intrinsics at machine address ``addr``."""
        for instr in self.pending_dbg:
            sym = instr.symbol
            self._note_symbol(sym)
            self._close(sym, addr)
            if isinstance(instr, DbgDeclare):
                offset = self.slot_offsets.get(instr.slot_id)
                if offset is not None:
                    self.open_loc[sym] = (addr, FrameLoc(offset))
            else:  # DbgValue
                loc = self.dbg_loc(instr.value)
                if loc is not None:
                    self.open_loc[sym] = (addr, loc)
        self.pending_dbg = []

    # -- emission ---------------------------------------------------------------

    def emit(self) -> FuncInfo:
        fn = self.fn
        offset = 0
        slots: List[FrameSlotInfo] = []
        for slot in fn.slots.values():
            self.slot_offsets[slot.slot_id] = offset
            slots.append(FrameSlotInfo(
                offset=offset, size=slot.size,
                obj_name=f"{fn.name}.{slot.name}"))
            offset += slot.size

        param_regs = [self.reg(vreg) for _sym, vreg in fn.params]
        self.low_pc = len(self.code)

        for block in fn.blocks:
            self.block_addrs[id(block)] = len(self.code)
            for instr in block.instrs:
                if instr.is_dbg():
                    self.pending_dbg.append(instr)
                    continue
                addr = len(self.code)
                self._flush_dbg(addr)
                machine = self._lower(instr)
                machine.line = instr.line
                self.code.append(machine)
                if instr.line is not None:
                    self.line_table.add(addr, instr.line)
                    if self.decl_line is None or \
                            instr.line < self.decl_line:
                        self.decl_line = instr.line
                scope = instr.scope
                while scope is not None:
                    self.scopes[scope.scope_id] = scope
                    self.scope_addrs.setdefault(
                        scope.scope_id, set()).add(addr)
                    scope = scope.parent

        self.high_pc = len(self.code)
        self._flush_dbg(self.high_pc)
        for sym in list(self.open_loc):
            self._close(sym, self.high_pc)

        for machine, attr, block in self.fixups:
            setattr(machine, attr, self.block_addrs[id(block)])

        return FuncInfo(
            name=fn.name, entry=self.low_pc, low_pc=self.low_pc,
            high_pc=self.high_pc, frame_size=offset,
            param_regs=param_regs, returns_value=fn.return_value,
            slots=slots)

    def _lower(self, instr: Instr) -> MInstr:
        if isinstance(instr, Move):
            return MMove(dst=self.reg(instr.dst),
                         src=self.operand(instr.src))
        if isinstance(instr, BinOp):
            return MBin(dst=self.reg(instr.dst), op=instr.op,
                        a=self.operand(instr.a), b=self.operand(instr.b))
        if isinstance(instr, UnOp):
            return MUn(dst=self.reg(instr.dst), op=instr.op,
                       a=self.operand(instr.a))
        if isinstance(instr, Load):
            return MLoad(dst=self.reg(instr.dst),
                         addr=self.operand(instr.addr),
                         volatile=instr.volatile)
        if isinstance(instr, Store):
            return MStore(addr=self.operand(instr.addr),
                          src=self.operand(instr.value),
                          volatile=instr.volatile)
        if isinstance(instr, Call):
            dst = self.reg(instr.dst) if instr.dst is not None else None
            return MCall(dst=dst, callee=instr.callee,
                         args=[self.operand(a) for a in instr.args],
                         external=instr.external)
        if isinstance(instr, Jump):
            machine = MJump()
            self.fixups.append((machine, "target", instr.target))
            return machine
        if isinstance(instr, Branch):
            machine = MBranch(cond=self.operand(instr.cond))
            self.fixups.append((machine, "if_true", instr.if_true))
            self.fixups.append((machine, "if_false", instr.if_false))
            return machine
        if isinstance(instr, Ret):
            src = self.operand(instr.value) \
                if instr.value is not None else None
            return MRet(src=src)
        raise LinkError(f"cannot lower {instr!r}")


class _DebugBuilder:
    """Builds one function's DIE subtree from the emitter's events."""

    def __init__(self, unit: DebugInfoUnit, emitter: _FunctionEmitter,
                 hooks):
        self.unit = unit
        self.emitter = emitter
        self.hooks = hooks
        self.fn = emitter.fn
        self.scope_dies: Dict[int, DIE] = {}
        self.subprogram: Optional[DIE] = None

    def build(self) -> DIE:
        em = self.emitter
        self.subprogram = DIE(TAG_SUBPROGRAM, {
            "name": self.fn.name,
            "low_pc": em.low_pc,
            "high_pc": em.high_pc,
            "decl_line": em.decl_line or 0,
            "frame_size": sum(s.size for s in em.fn.slots.values()),
        })
        self.unit.add_subprogram(self.subprogram)

        # Scope DIEs first so variables can attach underneath.
        for scope_id in sorted(em.scopes):
            self._scope_die(em.scopes[scope_id])

        symbols = list(self.fn.source_symbols)
        for sym in em.symbol_order:
            if sym not in symbols:
                symbols.append(sym)
        for sym in symbols:
            self._variable_die(sym)
        return self.subprogram

    # -- scopes ----------------------------------------------------------------

    def _abstract_subprogram(self, name: str) -> DIE:
        die = self.unit.abstract_subprograms.get(name)
        if die is None:
            die = DIE(TAG_SUBPROGRAM, {"name": name, "abstract": True})
            self.unit.abstract_subprograms[name] = die
            self.unit.root.add_child(die)
        return die

    def _abstract_variable(self, callee: str, sym: Symbol) -> DIE:
        origin = self._abstract_subprogram(callee)
        for child in origin.children:
            if child.is_variable() and child.name == sym.name:
                return child
        tag = TAG_FORMAL_PARAMETER if sym.kind == "param" else TAG_VARIABLE
        return origin.add_child(DIE(tag, {"name": sym.name, "abstract": True}))

    def _scope_die(self, scope: InlineScope) -> DIE:
        cached = self.scope_dies.get(scope.scope_id)
        if cached is not None:
            return cached
        parent = self.subprogram if scope.parent is None \
            else self._scope_die(scope.parent)
        addrs = self.emitter.scope_addrs.get(scope.scope_id, set())
        die = DIE(TAG_INLINED_SUBROUTINE, {
            "name": scope.callee,
            "call_line": scope.call_line,
            "ranges": _ranges_from_addrs(addrs),
            "abstract_origin": self._abstract_subprogram(scope.callee),
        })
        parent.add_child(die)
        self.scope_dies[scope.scope_id] = die
        return die

    # -- variables --------------------------------------------------------------

    def _location_list(self, sym: Symbol) -> Optional[LocationList]:
        events = self.emitter.loc_events.get(sym)
        if not events:
            return None
        raw = LocationList()
        for lo, hi, loc in events:
            raw.add(lo, hi, loc)
        normalized = raw.normalized()
        if not len(normalized):
            return None
        if self.hooks.fires("codegen.keep_empty_entries",
                            function=self.fn.name, symbol=sym.name):
            # Defective emission: a leftover empty (lo == hi) entry is
            # kept in the middle of the list. The data still describes
            # every range (lldb copes); a consumer that stops scanning at
            # the empty entry (gdb bug 28987) loses the entries after it.
            entries = list(normalized.entries)
            split = max(1, len(entries) // 2)
            anchor = entries[split - 1]
            entries.insert(split,
                           type(anchor)(anchor.hi, anchor.hi, anchor.loc))
            return LocationList(entries)
        return normalized

    def _variable_die(self, sym: Symbol) -> None:
        fn = self.fn
        if self.hooks.fires("codegen.drop_die", function=fn.name,
                            symbol=sym.name):
            return  # Missing DIE
        scope = fn.symbol_scopes.get(sym)
        parent = self.subprogram if scope is None \
            else self._scope_die(scope)
        tag = TAG_FORMAL_PARAMETER if sym.kind == "param" else TAG_VARIABLE
        attrs: Dict[str, object] = {
            "name": sym.name,
            "decl_line": sym.decl.line if sym.decl is not None
            else sym.scope_start,
            "scope_start": sym.scope_start,
            "scope_end": sym.scope_end,
        }
        die = DIE(tag, attrs)
        loclist = self._location_list(sym)
        if scope is not None:
            origin_var = self._abstract_variable(scope.callee, sym)
            attrs["abstract_origin"] = origin_var
            if loclist is not None and self.hooks.fires(
                    "codegen.abstract_only_location",
                    function=fn.name, symbol=sym.name):
                # Defective emission: the concrete DIE stays bare and
                # only the abstract origin carries the location.
                origin_var.attrs["location"] = loclist
            elif loclist is not None:
                attrs["location"] = loclist
            if self.hooks.fires("codegen.concrete_lexical_block",
                                function=fn.name, symbol=sym.name):
                block = DIE(TAG_LEXICAL_BLOCK, {"synthetic": True})
                parent.add_child(block)
                block.add_child(die)
                return
        elif loclist is not None:
            attrs["location"] = loclist
        parent.add_child(die)


def link(module: Module, hooks=None) -> Executable:
    """Lower ``module`` to the ISA and produce a linked executable.

    ``hooks`` is the compilation's :class:`~repro.bugs.defects.DefectHooks`
    (or ``None`` for a defect-free link, e.g. at ``-O0``): every debug
    emission decision with a cataloged failure mode is routed through it.
    """
    if hooks is None:
        hooks = _NullHooks()
    if "main" not in module.functions:
        raise LinkError("module has no main function")

    global_addr = assign_global_addresses(module)
    unit = DebugInfoUnit(module.name)
    line_table = LineTable()
    code: List[MInstr] = []
    functions: Dict[str, FuncInfo] = {}
    emitters: List[_FunctionEmitter] = []

    for fn in module.functions.values():
        emitter = _FunctionEmitter(fn, code, line_table, global_addr)
        functions[fn.name] = emitter.emit()
        emitters.append(emitter)

    for emitter in emitters:
        _DebugBuilder(unit, emitter, hooks).build()

    # Globals: always-valid absolute locations, visible at every pc.
    code_end = len(code) + 1
    layout: List[GlobalLayout] = []
    for gvar in module.globals.values():
        addr = global_addr[gvar.name]
        layout.append(GlobalLayout(name=gvar.name, addr=addr,
                                   size=gvar.size,
                                   words=gvar.initial_words()))
        loclist = LocationList()
        loclist.add(0, code_end, AddrLoc(addr))
        decl_line = gvar.symbol.decl.line \
            if gvar.symbol is not None and gvar.symbol.decl is not None \
            else 0
        unit.root.add_child(DIE(TAG_VARIABLE, {
            "name": gvar.name,
            "global": True,
            "decl_line": decl_line,
            "location": loclist,
        }))

    return Executable(
        instrs=code, entry=functions["main"].entry, functions=functions,
        global_layout=layout, global_addr=global_addr,
        line_table=line_table, debug=unit, name=module.name)
