"""Target backend: codegen/link, the executable format, and the VM."""

from .codegen import LinkError, link
from .isa import (
    Executable, FrameSlotInfo, FuncInfo, GlobalLayout, MBin, MBranch, MCall,
    MFrameAddr, MGlobalAddr, MImm, MInstr, MJump, MLoad, MMove, MReg, MRet,
    MStore, MUn,
)
from .vm import VM, Frame, ReferenceVM, RegFile, run_executable

__all__ = [
    "Executable", "Frame", "FrameSlotInfo", "FuncInfo", "GlobalLayout",
    "LinkError", "MBin", "MBranch", "MCall", "MFrameAddr", "MGlobalAddr",
    "MImm", "MInstr", "MJump", "MLoad", "MMove", "MReg", "MRet", "MStore",
    "MUn", "ReferenceVM", "RegFile", "VM", "link", "run_executable",
]
