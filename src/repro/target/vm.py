"""The target virtual machine.

Executes a linked :class:`~repro.target.isa.Executable` and produces the
same :class:`~repro.ir.interp.ExecResult` observation stream as the
reference interpreter — opaque-call events, symbolic volatile accesses,
and the exit code — so the two backends are differentially testable
(``interp(O0 module) == vm(linked module)`` on UB-free programs).

The VM is also the debuggee: :class:`~repro.debugger.base.Debugger`
instances drive it with one-shot breakpoints and inspect the stopped
machine through

* ``vm.pc`` — the address about to execute;
* ``vm.frame`` — the innermost :class:`Frame` (``regs``, ``frame_base``);
* ``vm.memory`` — addressable memory (``load``/``store``).

Memory layout is shared with the interpreter: globals at the addresses of
:func:`~repro.ir.interp.assign_global_addresses`, one frame stride per
call depth, and the same bounds-checked object registry, so out-of-bounds
accesses and symbolic observation names agree across backends.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Set

from ..ir.interp import (
    FRAME_STRIDE, STACK_BASE, ExecResult, Memory, Observation,
    TimeoutError_, external_call_result,
)
from ..ir.ops import UBError, eval_binop, eval_unop, wrap
from .isa import (
    Executable, FuncInfo, MBin, MBranch, MCall, MFrameAddr, MGlobalAddr,
    MImm, MJump, MLoad, MMove, MReg, MRet, MStore, MUn,
)


class RegFile(dict):
    """Per-frame physical register file; reading an unwritten register is
    undefined behaviour, exactly like the interpreter's virtual ones."""

    def __missing__(self, reg: int) -> int:
        raise UBError("use of undefined register", f"r{reg}")


class Frame:
    """One activation record."""

    def __init__(self, func: FuncInfo, frame_base: int,
                 ret_pc: Optional[int] = None,
                 ret_dst: Optional[int] = None):
        self.func = func
        self.frame_base = frame_base
        self.regs = RegFile()
        #: where execution resumes in the caller (None for the outermost)
        self.ret_pc = ret_pc
        #: caller register receiving the return value
        self.ret_dst = ret_dst

    def __repr__(self) -> str:
        return f"<frame {self.func.name} base={self.frame_base:#x}>"


class VM:
    """Executes a linked executable."""

    def __init__(self, exe: Executable, fuel: int = 2_000_000,
                 max_depth: int = 64):
        self.exe = exe
        self.fuel = fuel
        self.max_depth = max_depth
        self.memory = Memory()
        self.result = ExecResult()
        self.breakpoints: Set[int] = set()
        self.halted = False
        self.frames = []
        for layout in exe.global_layout:
            self.memory.add_object(layout.addr, layout.size, layout.name)
            for offset, word in enumerate(layout.words):
                self.memory.words[layout.addr + offset] = wrap(word)
        main = exe.functions.get("main")
        if main is None:
            raise UBError("no entry point", exe.name)
        self.pc = exe.entry
        self._push_frame(main, [], ret_pc=None, ret_dst=None)

    # -- frame management ---------------------------------------------------

    @property
    def frame(self) -> Frame:
        return self.frames[-1]

    def _push_frame(self, func: FuncInfo, args, ret_pc, ret_dst) -> Frame:
        # The interpreter allows call depths 0..max_depth inclusive
        # (main is depth 0); match it exactly or differential parity
        # breaks on recursion that bottoms out at the limit.
        if len(self.frames) > self.max_depth:
            raise UBError("stack overflow", func.name)
        frame_base = STACK_BASE + len(self.frames) * FRAME_STRIDE
        frame = Frame(func, frame_base, ret_pc=ret_pc, ret_dst=ret_dst)
        for slot in func.slots:
            self.memory.add_object(frame_base + slot.offset, slot.size,
                                   slot.obj_name)
        for reg, value in zip(func.param_regs, args):
            frame.regs[reg] = wrap(value)
        self.frames.append(frame)
        return frame

    def _pop_frame(self) -> Frame:
        frame = self.frames.pop()
        self.memory.remove_objects_from(frame.frame_base)
        return frame

    # -- operand resolution ---------------------------------------------------

    def resolve(self, op) -> int:
        """Value of one machine operand (per-type dispatch, see below)."""
        try:
            return _RESOLVE[type(op)](self, op)
        except KeyError:
            raise TypeError(f"bad machine operand {op!r}") from None

    # -- execution ---------------------------------------------------------------

    def run(self, breakpoints: Optional[Iterable[int]] = None,
            on_break: Optional[Callable[["VM"], None]] = None
            ) -> ExecResult:
        """Run to completion (or fuel exhaustion).

        ``breakpoints`` seeds ``self.breakpoints``; whenever the pc is a
        member *before* executing that instruction, ``on_break(self)`` is
        invoked — it may inspect the machine and mutate the breakpoint
        set (the debugger makes them one-shot this way).
        """
        if breakpoints is not None:
            self.breakpoints = set(breakpoints)
        step = self.step
        if on_break is None:
            while not self.halted:
                step()
        else:
            while not self.halted:
                if self.pc in self.breakpoints:
                    on_break(self)
                step()
        return self.result

    def step(self) -> None:
        """Execute exactly one machine instruction.

        The per-opcode work lives in ``_exec_*`` handlers reached
        through a per-type dispatch table — the previous ``isinstance``
        chain paid up to eight type checks per step on the trace path's
        hottest loop.  :class:`ReferenceVM` keeps the chain as the
        executable specification; the differential tests drive both over
        the fuzz corpus and demand identical results.
        """
        if self.halted:
            return
        if not 0 <= self.pc < len(self.exe.instrs):
            raise UBError("pc out of code range", hex(self.pc))
        instr = self.exe.instrs[self.pc]
        self.result.steps += 1
        if self.result.steps > self.fuel:
            raise TimeoutError_()
        handler = _DISPATCH.get(type(instr))
        if handler is None:
            raise TypeError(f"cannot execute {instr!r}")
        handler(self, instr)

    # -- per-opcode handlers ------------------------------------------------------
    # Every handler is responsible for advancing (or redirecting) the pc.

    def _exec_move(self, instr: MMove) -> None:
        self.frame.regs[instr.dst] = wrap(self.resolve(instr.src))
        self.pc += 1

    def _exec_bin(self, instr: MBin) -> None:
        a = self.resolve(instr.a)
        b = self.resolve(instr.b)
        self.frame.regs[instr.dst] = eval_binop(instr.op, a, b)
        self.pc += 1

    def _exec_un(self, instr: MUn) -> None:
        self.frame.regs[instr.dst] = eval_unop(
            instr.op, self.resolve(instr.a))
        self.pc += 1

    def _exec_load(self, instr: MLoad) -> None:
        addr = self.resolve(instr.addr)
        value = self.memory.load(addr)
        if instr.volatile:
            name, off = self.memory.object_of(addr)
            self.result.observations.append(
                Observation("vload", (name, off)))
        self.frame.regs[instr.dst] = value
        self.pc += 1

    def _exec_store(self, instr: MStore) -> None:
        addr = self.resolve(instr.addr)
        value = self.resolve(instr.src)
        self.memory.store(addr, value)
        if instr.volatile:
            name, off = self.memory.object_of(addr)
            self.result.observations.append(
                Observation("vstore", (name, off, wrap(value))))
        self.pc += 1

    def _exec_call(self, instr: MCall) -> None:
        values = [self.resolve(a) for a in instr.args]
        if instr.external:
            self.result.observations.append(
                Observation("call", (instr.callee, tuple(values))))
            if instr.dst is not None:
                self.frame.regs[instr.dst] = wrap(
                    external_call_result(instr.callee, values))
            self.pc += 1
            return
        callee = self.exe.functions.get(instr.callee)
        if callee is None:
            raise UBError("call to unlinked function", instr.callee)
        self._push_frame(callee, values, ret_pc=self.pc + 1,
                         ret_dst=instr.dst)
        self.pc = callee.entry

    def _exec_jump(self, instr: MJump) -> None:
        self.pc = instr.target

    def _exec_branch(self, instr: MBranch) -> None:
        cond = self.resolve(instr.cond)
        self.pc = instr.if_true if cond != 0 else instr.if_false

    def _exec_ret(self, instr: MRet) -> None:
        value = self.resolve(instr.src) \
            if instr.src is not None else None
        frame = self._pop_frame()
        if not self.frames:
            self.result.exit_code = wrap(value or 0) & 0xFF
            self.result.observations.append(
                Observation("exit", (self.result.exit_code,)))
            self.halted = True
            return
        if frame.ret_dst is not None:
            self.frame.regs[frame.ret_dst] = wrap(value or 0)
        self.pc = frame.ret_pc


#: instruction type -> unbound handler; built once at import time.
_DISPATCH = {
    MMove: VM._exec_move,
    MBin: VM._exec_bin,
    MUn: VM._exec_un,
    MLoad: VM._exec_load,
    MStore: VM._exec_store,
    MCall: VM._exec_call,
    MJump: VM._exec_jump,
    MBranch: VM._exec_branch,
    MRet: VM._exec_ret,
}

#: operand type -> unbound resolver; built once at import time.
_RESOLVE = {
    MImm: lambda vm, op: op.value,
    MReg: lambda vm, op: vm.frame.regs[op.reg],
    MFrameAddr: lambda vm, op: vm.frame.frame_base + op.offset,
    MGlobalAddr: lambda vm, op: op.addr,
}


class ReferenceVM(VM):
    """The pre-dispatch-table VM, kept verbatim as the executable
    specification of :meth:`VM.step`.

    The differential tests run both machines over the fuzz corpus and
    require identical :class:`~repro.ir.interp.ExecResult` streams; any
    behavioural drift in the dispatch-table fast path shows up there.
    """

    def resolve(self, op) -> int:
        if isinstance(op, MImm):
            return op.value
        if isinstance(op, MReg):
            return self.frame.regs[op.reg]
        if isinstance(op, MFrameAddr):
            return self.frame.frame_base + op.offset
        if isinstance(op, MGlobalAddr):
            return op.addr
        raise TypeError(f"bad machine operand {op!r}")

    def step(self) -> None:
        """Execute exactly one machine instruction (isinstance chain)."""
        if self.halted:
            return
        if not 0 <= self.pc < len(self.exe.instrs):
            raise UBError("pc out of code range", hex(self.pc))
        instr = self.exe.instrs[self.pc]
        self.result.steps += 1
        if self.result.steps > self.fuel:
            raise TimeoutError_()

        if isinstance(instr, MMove):
            self.frame.regs[instr.dst] = wrap(self.resolve(instr.src))
        elif isinstance(instr, MBin):
            a = self.resolve(instr.a)
            b = self.resolve(instr.b)
            self.frame.regs[instr.dst] = eval_binop(instr.op, a, b)
        elif isinstance(instr, MUn):
            self.frame.regs[instr.dst] = eval_unop(
                instr.op, self.resolve(instr.a))
        elif isinstance(instr, MLoad):
            addr = self.resolve(instr.addr)
            value = self.memory.load(addr)
            if instr.volatile:
                name, off = self.memory.object_of(addr)
                self.result.observations.append(
                    Observation("vload", (name, off)))
            self.frame.regs[instr.dst] = value
        elif isinstance(instr, MStore):
            addr = self.resolve(instr.addr)
            value = self.resolve(instr.src)
            self.memory.store(addr, value)
            if instr.volatile:
                name, off = self.memory.object_of(addr)
                self.result.observations.append(
                    Observation("vstore", (name, off, wrap(value))))
        elif isinstance(instr, MCall):
            values = [self.resolve(a) for a in instr.args]
            if instr.external:
                self.result.observations.append(
                    Observation("call", (instr.callee, tuple(values))))
                if instr.dst is not None:
                    self.frame.regs[instr.dst] = wrap(
                        external_call_result(instr.callee, values))
            else:
                callee = self.exe.functions.get(instr.callee)
                if callee is None:
                    raise UBError("call to unlinked function",
                                  instr.callee)
                self._push_frame(callee, values, ret_pc=self.pc + 1,
                                 ret_dst=instr.dst)
                self.pc = callee.entry
                return
        elif isinstance(instr, MJump):
            self.pc = instr.target
            return
        elif isinstance(instr, MBranch):
            cond = self.resolve(instr.cond)
            self.pc = instr.if_true if cond != 0 else instr.if_false
            return
        elif isinstance(instr, MRet):
            value = self.resolve(instr.src) \
                if instr.src is not None else None
            frame = self._pop_frame()
            if not self.frames:
                self.result.exit_code = wrap(value or 0) & 0xFF
                self.result.observations.append(
                    Observation("exit", (self.result.exit_code,)))
                self.halted = True
                return
            if frame.ret_dst is not None:
                self.frame.regs[frame.ret_dst] = wrap(value or 0)
            self.pc = frame.ret_pc
            return
        else:
            raise TypeError(f"cannot execute {instr!r}")
        self.pc += 1


def run_executable(exe: Executable, fuel: int = 2_000_000) -> ExecResult:
    """Execute ``exe`` from its entry point and return the observations."""
    return VM(exe, fuel=fuel).run()
