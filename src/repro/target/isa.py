"""Target ISA: the linear register-machine executable format.

The backend lowers an optimized IR :class:`~repro.ir.module.Module` into a
flat instruction stream addressed by index — the moral equivalent of a
text section.  An :class:`Executable` bundles that stream with everything
a debugger consumes:

* ``entry`` — the address of ``main``'s first instruction;
* ``functions`` — per-function metadata (:class:`FuncInfo`): code range,
  parameter registers, and the frame layout shared with the reference
  interpreter so volatile-access observations stay symbolic-comparable;
* ``global_layout`` — absolute addresses/initializers for globals,
  assigned by :func:`repro.ir.interp.assign_global_addresses`;
* ``line_table`` — the ``.debug_line`` analogue
  (:class:`~repro.debuginfo.linetable.LineTable`);
* ``debug`` — the compile-unit DIE tree
  (:class:`~repro.debuginfo.die.DebugInfoUnit`).

Machine operands mirror the IR's operand kinds after frame/global layout:
a physical register (:class:`MReg`), an immediate (:class:`MImm`), a
frame-relative address value (:class:`MFrameAddr`), or an absolute global
address value (:class:`MGlobalAddr`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..debuginfo.die import DebugInfoUnit
from ..debuginfo.linetable import LineTable


# -- operands ---------------------------------------------------------------


@dataclass(frozen=True)
class MReg:
    """A physical register operand (read of register ``reg``)."""

    reg: int = 0

    def __repr__(self):
        return f"r{self.reg}"


@dataclass(frozen=True)
class MImm:
    """An immediate integer operand."""

    value: int = 0

    def __repr__(self):
        return f"#{self.value}"


@dataclass(frozen=True)
class MFrameAddr:
    """The address ``frame_base + offset`` as a value (lea of a local)."""

    offset: int = 0

    def __repr__(self):
        return f"fp+{self.offset}"


@dataclass(frozen=True)
class MGlobalAddr:
    """An absolute address as a value (lea of a global)."""

    addr: int = 0
    name: str = ""

    def __repr__(self):
        return f"&{self.name or hex(self.addr)}"


#: A machine operand.
MOperand = object


# -- instructions ------------------------------------------------------------


@dataclass(eq=False)
class MInstr:
    """Base class for machine instructions.

    The address of an instruction is its index in the executable's
    ``instrs`` list; ``line`` drives the line table.
    """

    line: Optional[int] = None


@dataclass(eq=False)
class MMove(MInstr):
    """``rdst = src``."""

    dst: int = 0
    src: MOperand = None

    def __repr__(self):
        return f"mov r{self.dst}, {self.src!r}"


@dataclass(eq=False)
class MBin(MInstr):
    """``rdst = a <op> b``."""

    dst: int = 0
    op: str = "+"
    a: MOperand = None
    b: MOperand = None

    def __repr__(self):
        return f"bin r{self.dst}, {self.a!r} {self.op} {self.b!r}"


@dataclass(eq=False)
class MUn(MInstr):
    """``rdst = <op> a``."""

    dst: int = 0
    op: str = "-"
    a: MOperand = None

    def __repr__(self):
        return f"un r{self.dst}, {self.op}{self.a!r}"


@dataclass(eq=False)
class MLoad(MInstr):
    """``rdst = *(addr)``."""

    dst: int = 0
    addr: MOperand = None
    volatile: bool = False

    def __repr__(self):
        v = "v" if self.volatile else ""
        return f"{v}ld r{self.dst}, [{self.addr!r}]"


@dataclass(eq=False)
class MStore(MInstr):
    """``*(addr) = src``."""

    addr: MOperand = None
    src: MOperand = None
    volatile: bool = False

    def __repr__(self):
        v = "v" if self.volatile else ""
        return f"{v}st [{self.addr!r}], {self.src!r}"


@dataclass(eq=False)
class MJump(MInstr):
    """Unconditional jump to absolute address ``target``."""

    target: int = 0

    def __repr__(self):
        return f"jmp {self.target}"


@dataclass(eq=False)
class MBranch(MInstr):
    """Jump to ``if_true`` when ``cond != 0``, else ``if_false``."""

    cond: MOperand = None
    if_true: int = 0
    if_false: int = 0

    def __repr__(self):
        return f"br {self.cond!r} ? {self.if_true} : {self.if_false}"


@dataclass(eq=False)
class MCall(MInstr):
    """Call ``callee``; internal calls push a frame, external calls are
    modeled environment events."""

    dst: Optional[int] = None
    callee: str = ""
    args: List[MOperand] = field(default_factory=list)
    external: bool = False

    def __repr__(self):
        head = f"r{self.dst} = " if self.dst is not None else ""
        ext = "ext " if self.external else ""
        return f"{head}call {ext}{self.callee}" \
               f"({', '.join(map(repr, self.args))})"


@dataclass(eq=False)
class MRet(MInstr):
    """Return to the caller (or exit, from the outermost frame)."""

    src: Optional[MOperand] = None

    def __repr__(self):
        return f"ret {self.src!r}" if self.src is not None else "ret"


# -- executable metadata ------------------------------------------------------


@dataclass
class FrameSlotInfo:
    """One stack slot in a function's frame layout."""

    offset: int
    size: int
    #: the interpreter-compatible object name (``fn.slotname``) used for
    #: symbolic volatile-access observations and bounds checking
    obj_name: str


@dataclass
class FuncInfo:
    """Link-time metadata for one emitted function."""

    name: str
    entry: int
    low_pc: int = 0
    high_pc: int = 0
    frame_size: int = 0
    #: physical registers receiving the arguments, in parameter order
    param_regs: List[int] = field(default_factory=list)
    returns_value: bool = True
    slots: List[FrameSlotInfo] = field(default_factory=list)

    def covers(self, pc: int) -> bool:
        return self.low_pc <= pc < self.high_pc


@dataclass
class GlobalLayout:
    """One global variable's placed storage."""

    name: str
    addr: int
    size: int
    words: List[int] = field(default_factory=list)


@dataclass
class Executable:
    """A fully linked program: code + layout + debug information."""

    instrs: List[MInstr] = field(default_factory=list)
    entry: int = 0
    functions: Dict[str, FuncInfo] = field(default_factory=dict)
    global_layout: List[GlobalLayout] = field(default_factory=list)
    #: global name -> absolute address (shared with the interpreter)
    global_addr: Dict[str, int] = field(default_factory=dict)
    line_table: LineTable = field(default_factory=LineTable)
    debug: DebugInfoUnit = field(default_factory=DebugInfoUnit)
    name: str = "a.out"

    def __len__(self) -> int:
        return len(self.instrs)

    def function_at(self, pc: int) -> Optional[FuncInfo]:
        """The function whose code range covers ``pc``."""
        for info in self.functions.values():
            if info.covers(pc):
                return info
        return None

    def code_ranges(self) -> List[Tuple[int, int, str]]:
        """(low_pc, high_pc, name) for every function, address order."""
        return sorted((f.low_pc, f.high_pc, f.name)
                      for f in self.functions.values())

    def disassemble(self) -> str:
        """Human-readable listing with line annotations."""
        by_entry = {f.low_pc: f.name for f in self.functions.values()}
        out = []
        for addr, instr in enumerate(self.instrs):
            if addr in by_entry:
                out.append(f"{by_entry[addr]}:")
            loc = f"  ; line {instr.line}" if instr.line else ""
            out.append(f"  {addr:5d}  {instr!r}{loc}")
        return "\n".join(out)
