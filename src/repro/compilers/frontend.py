"""The shared frontend: everything about a test program that is
independent of the (family, version, level, debugger) cell.

The paper's matrix experiment pushes every pool program through every
compiler cell, but generation, validation, symbol resolution, source-fact
extraction, and ``-O0`` lowering depend only on the *program*.  A
:class:`FrontendSession` computes each of these exactly once; cells then
take a private, mutable copy of the lowered module via
:meth:`FrontendSession.ir_module` and run only the backend
(:meth:`~repro.compilers.compiler.Compiler.compile_ir`).

Sessions are also where the parallel matrix driver gets its determinism
guard: :attr:`FrontendSession.fingerprint` digests the lowered module in
a counter-normalized form, so a spawned worker can prove it lowered the
same IR the serial driver would have.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..analysis.source_facts import SourceFacts
from ..analysis.symbols import SymbolTable, resolve
from ..fuzz.generator import generate_validated
from ..ir.clone import clone_module, module_fingerprint
from ..ir.lower import lower_program
from ..ir.module import Module
from ..lang.ast_nodes import Program
from .compiler import _program_token


class FrontendSession:
    """One program's shared frontend products.

    Everything is computed lazily and at most once:

    * :attr:`program` — the validated source program;
    * :attr:`symtab` — resolved symbols (shared by facts and lowering);
    * :attr:`facts` — the conjecture checkers' source facts;
    * :attr:`base_module` — the pristine ``-O0``-shaped IR lowering
      (never mutated; cells receive clones);
    * :attr:`program_token` — the defect selectors' sampling token;
    * :attr:`fingerprint` — process-stable digest of the lowering.
    """

    def __init__(self, seed: int,
                 program: Optional[Program] = None):
        self.seed = seed
        self._program = program
        self._symtab: Optional[SymbolTable] = None
        self._facts: Optional[SourceFacts] = None
        self._base_module: Optional[Module] = None
        self._token: Optional[str] = None
        self._fingerprint: Optional[str] = None

    @property
    def program(self) -> Program:
        if self._program is None:
            self._program = generate_validated(self.seed)
        return self._program

    @property
    def symtab(self) -> SymbolTable:
        if self._symtab is None:
            self._symtab = resolve(self.program)
        return self._symtab

    @property
    def facts(self) -> SourceFacts:
        if self._facts is None:
            self._facts = SourceFacts(self.program, self.symtab)
        return self._facts

    @property
    def base_module(self) -> Module:
        if self._base_module is None:
            self._base_module = lower_program(self.program, self.symtab)
        return self._base_module

    @property
    def program_token(self) -> str:
        if self._token is None:
            self._token = _program_token(self.program)
        return self._token

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = module_fingerprint(self.base_module)
        return self._fingerprint

    def ir_module(self) -> Module:
        """A private, mutable copy of the lowered module for one cell."""
        return clone_module(self.base_module)

    def __repr__(self) -> str:
        return f"<FrontendSession seed={self.seed}>"


def frontend_pool(seeds: Iterable[int]) -> List[FrontendSession]:
    """Sessions for a seed range, in seed order (the shared pool the
    matrix campaign and the metrics study both consume)."""
    return [FrontendSession(seed) for seed in seeds]
