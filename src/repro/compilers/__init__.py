"""Compiler families, versions, pipelines, and the compile driver."""

from .pipelines import (
    CLANG_LEVEL_ALIASES, CLANG_LEVELS, GCC_LEVELS, boolean_flags,
    clang_pipeline, gcc_pipeline, pipeline_for,
)
from .compiler import (
    Compilation, Compiler, CompilerSpec, UnknownVersionError,
    default_compilers,
)
from .frontend import FrontendSession, frontend_pool
