"""Per-family, per-level, per-version optimization pipelines.

The pass lists model the structure the paper observes:

* gcc's ``-Og`` runs a deliberately debugger-friendly subset (no loop
  restructuring, no second scheduling pass), ``-O1`` adds loop header
  copying and LICM, ``-O2``/``-O3`` add inlining, VRP, strength reduction,
  scheduling, and (``-O3``) unrolling; ``-Os``/``-Oz`` are ``-O2`` with
  size-driven inlining and no unrolling.
* clang's ``-O1`` and ``-Og`` are the same pipeline (the paper reports
  only ``-Og`` for clang for this reason); LSR runs at *every* optimized
  level, which is why the paper's LSR bug dominates clang's Conjecture 2
  violations. The latest clang versions enable loop unrolling already at
  ``-Og`` — the "more aggressive optimizations that remove code for some
  loops" the paper found when line coverage dropped on trunk.

Version differences beyond defect windows are intentionally small: old
gcc lacks VRP and strength reduction (both were introduced over time).
"""

from __future__ import annotations

from typing import List

from ..passes import (
    ConstantPropagation, CopyPropagation, DeadCodeElimination,
    DeadStoreElimination, IPAPureConst, InstCombine, Inliner,
    InstructionScheduler, LoopInvariantCodeMotion, LoopRotate,
    LoopStrengthReduce, LoopUnroll, Mem2Reg, Pass, RedundancyElimination,
    SROA, ValueRangePropagation,
)
from ..passes.simplifycfg import SimplifyCFG

GCC_LEVELS = ("O0", "Og", "O1", "O2", "O3", "Os", "Oz")
CLANG_LEVELS = ("O0", "Og", "O2", "O3", "Os", "Oz")

#: clang treats -O1 as an alias of -Og (paper Section 2).
CLANG_LEVEL_ALIASES = {"O1": "Og"}


def gcc_pipeline(level: str, version_index: int) -> List[Pass]:
    """The gcc-family pass pipeline for one optimization level."""
    if level == "O0":
        return []
    promote = Mem2Reg(name="ipa-sra")
    base: List[Pass] = [
        promote,
        ConstantPropagation(name="tree-ccp"),
        RedundancyElimination(name="tree-fre"),
        CopyPropagation(name="cprop-registers"),
        DeadStoreElimination(name="tree-dse"),
        IPAPureConst(name="ipa-pure-const"),
        DeadCodeElimination(name="tree-dce"),
    ]
    if level == "Og":
        return base

    base.extend([
        LoopRotate(name="tree-ch"),
        LoopInvariantCodeMotion(name="tree-lim"),
        ConstantPropagation(name="tree-ccp"),
        DeadCodeElimination(name="tree-dce"),
    ])
    if level == "O1":
        return base

    inline_threshold = {"O2": 40, "O3": 80, "Os": 25, "Oz": 12}[level]
    base.insert(1, Inliner(name="inline", threshold=inline_threshold))
    if version_index >= 2:
        base.append(ValueRangePropagation(name="tree-vrp"))
    if level in ("O3",):
        base.append(LoopUnroll(name="unroll"))
    if level == "Oz":
        base.append(LoopUnroll(name="unroll", max_trips=2, max_body=10))
    if version_index >= 1:
        base.append(LoopStrengthReduce(name="ivopts"))
    base.append(DeadCodeElimination(name="tree-dce"))
    base.append(InstructionScheduler(name="schedule-insns2"))
    return base


def clang_pipeline(level: str, version_index: int) -> List[Pass]:
    """The clang-family pass pipeline for one optimization level."""
    level = CLANG_LEVEL_ALIASES.get(level, level)
    if level == "O0":
        return []
    base: List[Pass] = [
        SROA(),
        InstCombine(name="instcombine"),
        ConstantPropagation(name="ipsccp"),
        RedundancyElimination(name="earlycse"),
        SimplifyCFG(name="simplifycfg"),
        DeadCodeElimination(name="adce"),
        LoopRotate(name="loop-rotate"),
    ]
    if level == "Og":
        if version_index >= 4:
            # Trunk-era clang removes/unrolls loops already at -Og.
            base.append(LoopUnroll(name="unroll", max_trips=4,
                                   max_body=16))
        base.extend([
            LoopStrengthReduce(name="lsr"),
            DeadCodeElimination(name="adce"),
            InstructionScheduler(name="misched", window=1),
        ])
        return base

    inline_threshold = {"O2": 40, "O3": 80, "Os": 25, "Oz": 12}[level]
    base.extend([
        Inliner(name="inline", threshold=inline_threshold),
        IPAPureConst(name="ipa-pure-const"),
        InstCombine(name="instcombine"),
        SimplifyCFG(name="simplifycfg"),
        LoopInvariantCodeMotion(name="licm"),
    ])
    if level in ("O2", "O3"):
        base.append(LoopUnroll(name="unroll",
                               max_trips=8 if level == "O3" else 4))
    base.extend([
        LoopStrengthReduce(name="lsr"),
        DeadStoreElimination(name="dse"),
        DeadCodeElimination(name="adce"),
        InstructionScheduler(name="misched"),
    ])
    return base


def pipeline_for(family: str, level: str, version_index: int) -> List[Pass]:
    if family == "gcc":
        return gcc_pipeline(level, version_index)
    if family == "clang":
        return clang_pipeline(level, version_index)
    raise ValueError(f"unknown compiler family {family!r}")


def boolean_flags(family: str, level: str, version_index: int) -> List[str]:
    """The distinct pass names that can be disabled ``-fno-<name>`` style
    at this level (the gcc triage method's search space, Section 4.3)."""
    seen = []
    for opt_pass in pipeline_for(family, level, version_index):
        if opt_pass.name not in seen:
            seen.append(opt_pass.name)
    return seen
