"""The compiler driver.

``Compiler(family, version).compile(program, level, ...)`` runs the whole
toolchain: resolve -> lower -> optimization pipeline (with the version's
active defects hooked in) -> codegen/link. The result bundles everything
the testing pipeline needs: the executable with its debug information, the
pipeline report, and the record of which injected defects actually fired
(the ground truth that triage is later evaluated against).

Triage controls are first-class, mirroring Section 4.3:

* ``disabled`` — gcc-style ``-fno-<pass>`` boolean flags;
* ``bisect_limit`` — clang-style ``-mllvm -opt-bisect-limit=N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..analysis.symbols import SymbolTable, resolve
from ..bugs.catalog import (
    CLANG_VERSIONS, GCC_VERSIONS, defects_for_family,
)
from ..bugs.defects import Defect, DefectHooks
from ..ir.lower import lower_program
from ..ir.module import Module
from ..lang.ast_nodes import Program
from ..passes.base import PassManager, PipelineReport
from ..target.codegen import link
from ..target.isa import Executable
from .pipelines import (
    CLANG_LEVEL_ALIASES, CLANG_LEVELS, GCC_LEVELS, boolean_flags,
    pipeline_for,
)


class UnknownVersionError(ValueError):
    """Raised for a version name outside the family's release list."""


@dataclass(frozen=True)
class CompilerSpec:
    """A picklable recipe for rebuilding a :class:`Compiler`.

    Sharded campaign workers (``spawn`` start method) cannot receive live
    ``Compiler`` objects — the defect catalog carries selector closures —
    so they receive this spec and rebuild the compiler from the catalog.
    Only catalog-configured compilers are representable; a compiler whose
    ``defects`` list was hand-edited refuses to produce a spec.
    """

    family: str = "gcc"
    version: str = "trunk"
    verify: bool = False

    def build(self) -> "Compiler":
        return Compiler(self.family, self.version, verify=self.verify)


def _program_token(program: Program) -> str:
    """A stable, structure-derived identity for selector sampling."""
    from ..lang.ast_nodes import walk_stmt
    count = 0
    acc = 0
    for fn in program.functions:
        for stmt in walk_stmt(fn.body):
            count += 1
            acc = (acc * 31 + stmt.line) & 0xFFFFFFFF
    return f"{len(program.globals)}g{count}s{acc:x}"


@dataclass
class Compilation:
    """Everything produced by one compilation."""

    family: str
    version: str
    level: str
    module: Module
    exe: Executable
    report: PipelineReport = field(default_factory=PipelineReport)
    hooks: Optional[DefectHooks] = None

    def fired_defects(self) -> List[str]:
        """Distinct ids of injected defects that fired."""
        return self.hooks.fired_defect_ids() if self.hooks else []


class Compiler:
    """One (family, version) compiler instance."""

    def __init__(self, family: str = "gcc", version: str = "trunk",
                 verify: bool = False,
                 extra_defects: Sequence[Defect] = ()):
        if family not in ("gcc", "clang"):
            raise ValueError(f"unknown compiler family {family!r}")
        self.family = family
        self.version = version
        self.verify = verify
        versions = GCC_VERSIONS if family == "gcc" else CLANG_VERSIONS
        if version not in versions:
            raise UnknownVersionError(
                f"{family} has no version {version!r}; "
                f"known: {', '.join(versions)}")
        self.version_index = versions.index(version)
        self.defects = list(defects_for_family(family)) + \
            list(extra_defects)

    # -- introspection ------------------------------------------------------

    def spec(self) -> CompilerSpec:
        """The picklable construction spec, if one can reproduce us."""
        if self.defects != list(defects_for_family(self.family)):
            raise ValueError(
                "compiler carries a customized defect list; only "
                "catalog-configured compilers have a picklable spec")
        return CompilerSpec(family=self.family, version=self.version,
                            verify=self.verify)

    @property
    def levels(self) -> Sequence[str]:
        return GCC_LEVELS if self.family == "gcc" else CLANG_LEVELS

    def normalize_level(self, level: str) -> str:
        if self.family == "clang":
            return CLANG_LEVEL_ALIASES.get(level, level)
        return level

    def flags(self, level: str) -> List[str]:
        """Boolean optimization flags available at ``level``."""
        return boolean_flags(self.family, self.normalize_level(level),
                             self.version_index)

    def pass_sequence(self, level: str) -> List[str]:
        """Ordered pass instances (the bisect search space)."""
        return [p.name for p in pipeline_for(
            self.family, self.normalize_level(level), self.version_index)]

    @property
    def native_debugger_name(self) -> str:
        return "gdb-like" if self.family == "gcc" else "lldb-like"

    # -- compilation ----------------------------------------------------------

    def compile(self, program: Program, level: str = "O2",
                symtab: Optional[SymbolTable] = None,
                disabled: Sequence[str] = (),
                bisect_limit: Optional[int] = None) -> Compilation:
        """Compile ``program`` at ``level`` and link an executable."""
        level = self.normalize_level(level)
        if level not in self.levels:  # fail fast, before lowering
            raise ValueError(
                f"{self.family} does not support -{level}")
        if symtab is None:
            symtab = resolve(program)
        module = lower_program(program, symtab)
        return self.compile_ir(module, level,
                               program_token=_program_token(program),
                               disabled=disabled,
                               bisect_limit=bisect_limit)

    def compile_ir(self, module: Module, level: str = "O2",
                   program_token: str = "",
                   disabled: Sequence[str] = (),
                   bisect_limit: Optional[int] = None) -> Compilation:
        """Run the backend only: optimization pipeline + codegen/link.

        ``module`` is a freshly lowered (or freshly cloned — see
        :func:`~repro.ir.clone.clone_module`) ``-O0``-shaped IR module;
        it is mutated in place.  ``program_token`` must be the source
        program's :func:`_program_token` so defect selectors sample the
        same way they would on the full :meth:`compile` path — the
        compile-once matrix driver computes it once per program and
        reuses it for every cell.
        """
        level = self.normalize_level(level)
        if level not in self.levels:
            raise ValueError(
                f"{self.family} does not support -{level}")
        hooks = DefectHooks(self.defects, self.family, level,
                            self.version_index)
        hooks.program_token = program_token
        report = PipelineReport()
        if level != "O0":
            pipeline = pipeline_for(self.family, level, self.version_index)
            manager = PassManager(pipeline, disabled=disabled,
                                  bisect_limit=bisect_limit,
                                  verify=self.verify)
            report = manager.run(module, hooks=hooks, level=level,
                                 family=self.family)
            hooks.applied_passes = report.applied
        exe = link(module, hooks=hooks if level != "O0" else None)
        return Compilation(
            family=self.family, version=self.version, level=level,
            module=module, exe=exe, report=report, hooks=hooks)


def default_compilers() -> List[Compiler]:
    """Trunk compilers of both families (the Section 5.1 configuration)."""
    return [Compiler("gcc", "trunk"), Compiler("clang", "trunk")]
