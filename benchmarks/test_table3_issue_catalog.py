"""Table 3 — the 38 reported issues and their manifestations.

Prints the catalog (tracker id, system, status, conjecture, DWARF
analysis) exactly as Table 3 lists it, and verifies its aggregate
structure against the paper's numbers: 16 clang + 19 gcc + 2 gdb + 1 lldb
issues; 20/11/7 per conjecture; 4 Missing / 16 Hollow / 12 Incomplete /
3 Incorrect DIEs among the 35 compiler-side issues. Then exercises the
trunk compilers over a pool and reports which cataloged defects actually
fired — the injected bugs being *findable* is the point of the system.
"""

from collections import Counter

from repro.bugs import ISSUES, issues_for
from repro.compilers import Compiler
from repro.debugger import GdbLike, LldbLike
from repro.pipeline import run_campaign_on_programs

from conftest import banner, pool_size, program_pool


def test_table3(benchmark):
    print(banner("Table 3 — reported issues"))
    print(f"{'tracker':>8} {'system':>6} {'status':>15} "
          f"{'conj':>4} {'DWARF analysis':>15}")
    for issue in ISSUES:
        print(f"{issue.tracker_id:>8} {issue.system:>6} "
              f"{issue.status:>15} {issue.conjecture:>4} "
              f"{(issue.category or '-'):>15}")

    assert len(ISSUES) == 38
    assert len(issues_for("clang")) == 16
    assert len(issues_for("gcc")) == 19
    assert len(issues_for("gdb")) == 2
    assert len(issues_for("lldb")) == 1

    categories = Counter(i.category for i in ISSUES
                         if i.category is not None)
    assert categories["missing"] == 4
    assert categories["hollow"] == 16
    assert categories["incomplete"] == 12
    assert categories["incorrect"] == 3

    confirmed = sum(1 for i in ISSUES
                    if i.status in ("Confirmed", "Fixed",
                                    "Fixed by trunk*"))
    assert confirmed == 24, "24 issues were confirmed/fixed (abstract)"

    # How many cataloged defects actually fire on a pool?
    pool = program_pool(pool_size(40))
    fired = set()

    def run():
        for family in ("gcc", "clang"):
            compiler = Compiler(family, "trunk")
            for program in pool:
                for level in compiler.levels:
                    if level == "O0":
                        continue
                    compilation = compiler.compile(program, level)
                    fired.update(compilation.fired_defects())

    benchmark.pedantic(run, rounds=1, iterations=1)
    catalog_ids = {i.defect.defect_id for i in ISSUES}
    active = sorted(fired & catalog_ids)
    print(f"\ncataloged defects that fired on the pool "
          f"({len(active)}/{len(catalog_ids)}):")
    print("  " + ", ".join(active))
    assert len(active) >= len(catalog_ids) // 2, \
        "most cataloged defects should be exercisable by the pool"
