"""Table 3 — the 38 reported issues and their manifestations.

Renders the catalog (tracker id, system, status, conjecture, DWARF
analysis) through the ``repro.report`` Table 3 builder — the code path
behind ``repro-report table3`` — and verifies its aggregate structure
against the paper's numbers via :func:`repro.bugs.issue_counts`: 16
clang + 19 gcc + 2 gdb + 1 lldb issues; 20/11/7 per conjecture; 4
Missing / 16 Hollow / 12 Incomplete / 3 Incorrect DIEs among the 35
compiler-side issues. Then exercises the trunk compilers over a pool
and reports which cataloged defects actually fired — the injected bugs
being *findable* is the point of the system.
"""

from repro.bugs import ISSUES, issue_counts, issues_for
from repro.compilers import Compiler
from repro.report import render, table3

from conftest import banner, pool_size, program_pool


def test_table3(benchmark):
    table = table3()
    print(banner("Table 3 — reported issues"))
    print(render(table, "text"))

    counts = issue_counts()
    assert counts["total"] == len(ISSUES) == len(table.rows) == 38
    assert counts["system"] == {"clang": 16, "gcc": 19,
                                "gdb": 2, "lldb": 1}
    assert counts["conjecture"] == {"C1": 20, "C2": 11, "C3": 7}
    assert counts["category"] == {"missing": 4, "hollow": 16,
                                  "incomplete": 12, "incorrect": 3}
    confirmed = sum(n for status, n in counts["status"].items()
                    if status in ("Confirmed", "Fixed",
                                  "Fixed by trunk*"))
    assert confirmed == 24, "24 issues were confirmed/fixed (abstract)"
    # The per-system rendering filters the same rows issues_for picks.
    for system in ("gcc", "clang", "gdb", "lldb"):
        assert len(table3(system=system).rows) == \
            len(issues_for(system))

    # How many cataloged defects actually fire on a pool?
    pool = program_pool(pool_size(40))
    fired = set()

    def run():
        for family in ("gcc", "clang"):
            compiler = Compiler(family, "trunk")
            for program in pool:
                for level in compiler.levels:
                    if level == "O0":
                        continue
                    compilation = compiler.compile(program, level)
                    fired.update(compilation.fired_defects())

    benchmark.pedantic(run, rounds=1, iterations=1)
    catalog_ids = {i.defect.defect_id for i in ISSUES}
    active = sorted(fired & catalog_ids)
    print(f"\ncataloged defects that fired on the pool "
          f"({len(active)}/{len(catalog_ids)}):")
    print("  " + ", ".join(active))
    assert len(active) >= len(catalog_ids) // 2, \
        "most cataloged defects should be exercisable by the pool"
