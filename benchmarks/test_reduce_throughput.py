"""BENCH_reduce — candidate throughput of the fast reduction engine vs
the seed-faithful :class:`~repro.reduce.reference.ReferenceReducer`.

Both engines reduce the same deterministic witness corpus (the first
violations found scanning seeds from 0, culprit triaged first) over the
*same* candidate schedule, so the measured difference is pure
per-candidate machinery: edit/undo instead of per-candidate deep
copies, one frontend pass instead of three, backend-only compiles over
module clones, calibrated interpreter fuel instead of burning the full
500k-step budget on every infinite-loop candidate, and source/
fingerprint verdict memoization.

Recorded in ``BENCH_reduce.json`` (via conftest's session-finish hook):
per-engine candidates/sec, the headline ``reduce_speedup`` (fast rate /
reference rate), the end-to-end ``wall_speedup``, the parallel
speculation rate, and the oracle-memo hit count.  The floor —
``min_reduce_speedup`` in ``bench_floor.json``, the tentpole's >= 3x
acceptance bar — is enforced whenever ``REPRO_BENCH_STRICT`` is not 0.
The bit-identity of fast / parallel / reference outputs is asserted
unconditionally: it is the differential guarantee, not a perf number.
"""

import json
import os
import time

from repro import Compiler, GdbLike
from repro.pipeline import test_program as check_program
from repro.fuzz import generate_validated
from repro.reduce import Reducer, ReferenceReducer
from repro.triage import triage

from conftest import banner, record_reduce_bench

CPUS = os.cpu_count() or 1

FLOOR_PATH = os.path.join(os.path.dirname(__file__), "bench_floor.json")

#: Waivable on noisy shared runners; the JSON is still emitted.
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

#: Witnesses reduced per engine (first found scanning seeds from 0).
WITNESSES = int(os.environ.get("REPRO_BENCH_REDUCE_WITNESSES", "4"))


def _witness_corpus(count):
    """The first ``count`` (seed, level, violation, culprit) witnesses,
    culprits triaged with the family's native method."""
    compiler = Compiler("gcc", "trunk")
    debugger = GdbLike()
    corpus = []
    for seed in range(200):
        program = generate_validated(seed)
        per_level = check_program(program, compiler, debugger)
        for level, violations in per_level.items():
            if violations:
                violation = violations[0]
                culprit = triage(compiler, program, level, debugger,
                                 violation).culprit
                corpus.append((seed, level, violation, culprit))
                break
        if len(corpus) >= count:
            break
    assert len(corpus) == count, f"only {len(corpus)} witnesses found"
    return compiler, debugger, corpus


def test_reduce_fast_vs_reference(benchmark):
    compiler, debugger, corpus = _witness_corpus(WITNESSES)
    workers = min(4, max(2, CPUS))
    totals = {"reference": [0, 0.0], "fast": [0, 0.0],
              "parallel": [0, 0.0]}
    memo_hits = 0

    def run():
        nonlocal memo_hits
        memo_hits = 0
        for engine in totals:
            totals[engine] = [0, 0.0]
        outputs = []
        for seed, level, violation, culprit in corpus:
            program = generate_validated(seed)

            reference = ReferenceReducer(compiler, level, debugger,
                                         violation, culprit_flag=culprit)
            started = time.perf_counter()
            ref_result = reference.reduce(program)
            totals["reference"][0] += ref_result.steps_tried
            totals["reference"][1] += time.perf_counter() - started

            fast = Reducer(compiler, level, debugger, violation,
                           culprit_flag=culprit)
            started = time.perf_counter()
            fast_result = fast.reduce(program)
            totals["fast"][0] += fast_result.steps_tried
            totals["fast"][1] += time.perf_counter() - started
            memo_hits += fast_result.stats.memo_hits

            speculative = Reducer(compiler, level, debugger, violation,
                                  culprit_flag=culprit)
            started = time.perf_counter()
            par_result = speculative.reduce_parallel(program,
                                                     workers=workers)
            totals["parallel"][0] += par_result.steps_tried
            totals["parallel"][1] += time.perf_counter() - started

            outputs.append((seed, ref_result, fast_result, par_result))
        return outputs

    outputs = benchmark.pedantic(run, rounds=1, iterations=1)

    # The differential guarantee: fast, parallel, and reference land on
    # the same reduced program via the same accepted edits.
    for seed, ref_result, fast_result, par_result in outputs:
        assert fast_result.source == ref_result.source, seed
        assert fast_result.accepted == ref_result.accepted, seed
        assert fast_result.steps_tried == ref_result.steps_tried, seed
        assert par_result.source == ref_result.source, seed
        assert par_result.accepted == ref_result.accepted, seed

    rates = {engine: count / seconds if seconds else 0.0
             for engine, (count, seconds) in totals.items()}
    reduce_speedup = rates["fast"] / rates["reference"]
    wall_speedup = totals["reference"][1] / totals["fast"][1]
    record_reduce_bench(
        witnesses=WITNESSES,
        cpus=CPUS,
        parallel_workers=workers,
        candidates=totals["fast"][0],
        reference_candidates=totals["reference"][0],
        reference_seconds=round(totals["reference"][1], 3),
        fast_seconds=round(totals["fast"][1], 3),
        parallel_seconds=round(totals["parallel"][1], 3),
        reference_candidates_per_sec=round(rates["reference"], 1),
        fast_candidates_per_sec=round(rates["fast"], 1),
        parallel_candidates_per_sec=round(rates["parallel"], 1),
        reduce_speedup=round(reduce_speedup, 2),
        wall_speedup=round(wall_speedup, 2),
        memo_hits=memo_hits,
    )

    print(banner(f"Reduction throughput ({WITNESSES} witnesses, "
                 f"{CPUS} cpus)"))
    for engine in ("reference", "fast", "parallel"):
        count, seconds = totals[engine]
        print(f"  {engine:10s} {count:5d} candidates {seconds:7.2f}s "
              f"({rates[engine]:7.1f} candidates/sec)")
    print(f"  speedup: {reduce_speedup:.2f}x candidates/sec "
          f"({wall_speedup:.2f}x wall-clock), {memo_hits} memo hits")

    if STRICT:
        with open(FLOOR_PATH, encoding="utf-8") as handle:
            floor = json.load(handle)["min_reduce_speedup"]
        # The tentpole acceptance bar: the fast engine must evaluate
        # candidates at >= 3x the seed reducer's rate on this corpus.
        assert reduce_speedup >= floor, \
            (f"fast reducer only {reduce_speedup:.2f}x over the "
             f"reference (floor {floor:.1f}x)")
        assert memo_hits > 0, "oracle memo never hit on the corpus"
