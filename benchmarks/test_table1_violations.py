"""Table 1 — conjecture violations per optimization level (Section 5.1).

Regenerates both halves of Table 1 (clang left, gcc right) plus the
no-violation program counts quoted in the text, and checks the headline
shape claims:

* clang's Conjecture 2 violations dwarf gcc's (the LSR bug);
* gcc's Conjecture 1 violations are rare at -Og and abundant at -O2+;
* Conjecture 3 violations concentrate at -Og for gcc.
"""

from repro.compilers import Compiler
from repro.conjectures import C1, C2, C3, CONJECTURES
from repro.debugger import GdbLike, LldbLike
from repro.pipeline import run_campaign_on_programs

from conftest import banner, pool_size, program_pool


def _format(result):
    rows = [f"{'level':>8}  {'C1':>5} {'C2':>5} {'C3':>5}"]
    table = result.table1()
    for level in result.levels + ["unique"]:
        row = table[level]
        rows.append(f"{level:>8}  {row[C1]:>5} {row[C2]:>5} {row[C3]:>5}")
    return "\n".join(rows)


def test_table1(benchmark):
    pool = program_pool(pool_size(40))
    results = {}

    def run():
        for family, debugger in (("clang", LldbLike()),
                                 ("gcc", GdbLike())):
            compiler = Compiler(family, "trunk")
            results[family] = run_campaign_on_programs(
                pool, compiler, debugger)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    for family in ("clang", "gcc"):
        result = results[family]
        print(banner(f"Table 1 ({family}, {result.pool_size} programs)"))
        print(_format(result))
        clean = {c: result.programs_without_violations(c)
                 for c in CONJECTURES}
        print(f"programs with no violations: {clean}")

    clang, gcc = results["clang"], results["gcc"]
    # Shape claims from Section 5.1.
    # Paper: 3.9x; our pool reproduces the direction with a smaller
    # factor (the shared-cleanup defect also contributes gcc C2) — the
    # deviation is recorded in EXPERIMENTS.md.
    assert clang.unique_count(C2) > 1.3 * gcc.unique_count(C2), \
        "clang C2 (LSR) must exceed gcc C2"
    assert gcc.count("Og", C1) < gcc.count("O2", C1), \
        "gcc C1 must be rare at -Og relative to -O2"
    assert gcc.count("Og", C3) > gcc.count("O2", C3), \
        "gcc C3 concentrates at -Og"
    for family, result in results.items():
        for conjecture in CONJECTURES:
            assert result.unique_count(conjecture) > 0, \
                f"{family} {conjecture} found nothing"
