"""Table 1 — conjecture violations per optimization level (Section 5.1).

Regenerates both halves of Table 1 (clang left, gcc right) plus the
no-violation program counts quoted in the text, and checks the headline
shape claims:

* clang's Conjecture 2 violations dwarf gcc's (the LSR bug);
* gcc's Conjecture 1 violations are rare at -Og and abundant at -O2+;
* Conjecture 3 violations concentrate at -Og for gcc.

Both the printing and the assertions go through the ``repro.report``
table builders (the same code path as ``repro-report table1``), so this
benchmark doubles as an end-to-end check of the report layer over live
campaign results.
"""

from repro.compilers import Compiler
from repro.conjectures import C1, C2, C3, CONJECTURES
from repro.debugger import GdbLike, LldbLike
from repro.pipeline import run_campaign_on_programs
from repro.report import render, table1

from conftest import banner, pool_size, program_pool


def test_table1(benchmark):
    pool = program_pool(pool_size(40))
    results = {}

    def run():
        for family, debugger in (("clang", LldbLike()),
                                 ("gcc", GdbLike())):
            compiler = Compiler(family, "trunk")
            results[family] = run_campaign_on_programs(
                pool, compiler, debugger)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    tables = {family: table1(result)
              for family, result in results.items()}
    for family in ("clang", "gcc"):
        result = results[family]
        print(banner(f"Table 1 ({family}, {result.pool_size} programs)"))
        print(render(tables[family], "text"))
        clean = {c: result.programs_without_violations(c)
                 for c in CONJECTURES}
        print(f"programs with no violations: {clean}")

    clang, gcc = tables["clang"], tables["gcc"]
    # Shape claims from Section 5.1, asserted through the rendered
    # table cells (Table.lookup), not the raw campaign aggregates.
    # Paper: 3.9x; our pool reproduces the direction with a smaller
    # factor (the shared-cleanup defect also contributes gcc C2) — the
    # deviation is recorded in EXPERIMENTS.md.
    assert clang.lookup("unique", C2) > 1.3 * gcc.lookup("unique", C2), \
        "clang C2 (LSR) must exceed gcc C2"
    assert gcc.lookup("Og", C1) < gcc.lookup("O2", C1), \
        "gcc C1 must be rare at -Og relative to -O2"
    assert gcc.lookup("Og", C3) > gcc.lookup("O2", C3), \
        "gcc C3 concentrates at -Og"
    for family, table in tables.items():
        for conjecture in CONJECTURES:
            assert table.lookup("unique", conjecture) > 0, \
                f"{family} {conjecture} found nothing"
        # The rendered cells are the campaign's own aggregates.
        assert {level: table.lookup(level, C1)
                for level in results[family].levels} == \
            {level: results[family].count(level, C1)
             for level in results[family].levels}
