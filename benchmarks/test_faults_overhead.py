"""BENCH_faults — what failure containment costs on the fault-free path.

Every campaign seed now evaluates inside a
:class:`~repro.faults.FailureBoundary` (stage probes + a per-pair
try/except); this benchmark pins that tax.  Two timed passes over the
same seed pool and cell (gcc trunk x gdb-like, all levels): one through
the containment boundary (``contain=True``, the production default, no
fault plan) and one through the bare pre-containment path
(``contain=False``).  Both must produce bit-identical programs — the
boundary is transparent when nothing fails — and the relative overhead
must stay under the ``max_faults_overhead_pct`` floor in
``bench_floor.json`` (waivable with ``REPRO_BENCH_STRICT=0`` like every
other floor here).  Timings are the best of three interleaved rounds,
so one scheduler hiccup cannot fail the bar.
"""

import json
import os
import time

from repro import Compiler, GdbLike
from repro.fuzz import SeedSpec
from repro.pipeline import run_campaign_seeds

from conftest import banner, pool_size, record_faults_bench

FLOOR_PATH = os.path.join(os.path.dirname(__file__), "bench_floor.json")

#: Waivable on noisy shared runners; the JSON is still emitted.
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

POOL = pool_size(16)
ROUNDS = 3


def test_faults_overhead(benchmark, capsys):
    compiler = Compiler("gcc", "trunk")
    debugger = GdbLike()
    seeds = SeedSpec(base=0, count=POOL)
    timings = {"contained": [], "bare": []}
    results = {}

    def timed(label, **kwargs):
        started = time.perf_counter()
        result = run_campaign_seeds(compiler, debugger, seeds, **kwargs)
        timings[label].append(time.perf_counter() - started)
        results[label] = result

    def run():
        for _ in range(ROUNDS):
            timed("contained", contain=True)
            timed("bare", contain=False)
        return results["contained"], results["bare"]

    contained, bare = benchmark.pedantic(run, rounds=1, iterations=1)

    # The boundary is transparent on the fault-free path: identical
    # programs, no failure records.
    assert contained == bare
    assert contained.failures == []

    best = {label: min(series) for label, series in timings.items()}
    overhead_pct = 100.0 * (best["contained"] / best["bare"] - 1.0)
    with open(FLOOR_PATH, encoding="utf-8") as handle:
        ceiling = json.load(handle)["max_faults_overhead_pct"]

    record_faults_bench(
        pool=POOL,
        rounds=ROUNDS,
        contained_sec=round(best["contained"], 4),
        bare_sec=round(best["bare"], 4),
        overhead_pct=round(overhead_pct, 2),
        max_faults_overhead_pct=ceiling,
        strict=STRICT,
    )

    with capsys.disabled():
        print(banner("containment overhead (fault-free path)"))
        print(f"pool {POOL}, best of {ROUNDS}: "
              f"bare {best['bare']:.3f}s, "
              f"contained {best['contained']:.3f}s "
              f"({overhead_pct:+.2f}% vs ceiling {ceiling}%)")

    if STRICT:
        assert overhead_pct <= ceiling, (
            f"containment overhead {overhead_pct:.2f}% exceeds the "
            f"max_faults_overhead_pct floor ({ceiling}%); either the "
            f"boundary grew a hot path or the run was too noisy "
            f"(REPRO_BENCH_STRICT=0 waives)")
