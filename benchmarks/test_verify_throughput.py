"""BENCH_verify — static verification throughput vs the dynamic
evaluation loop it front-runs.

The static verifier (``repro.staticcheck``) and the dynamic campaign
(``repro.pipeline.run_campaign``) consume the same seed pool; both pay
for frontend + compile, which dominates either pipeline, so the two
rates land close together — the verifier buys its findings (including
``O0`` coverage, which the dynamic loop cannot check without a
baseline) at roughly the cost of the compile it needs anyway. What the
benchmark pins is the absolute verified-programs/sec floor
(``min_verify_programs_per_sec`` in ``bench_floor.json``, enforced
whenever ``REPRO_BENCH_STRICT`` is not 0, with the same 30% tolerance
as the matrix floor) plus the side-by-side record: per-loop seconds,
programs/sec, the static/dynamic rate ratio, and which defect ids the
static pass flagged without a single debugger step.
"""

import json
import os
import time

from repro import Compiler, GdbLike
from repro.pipeline import run_campaign
from repro.staticcheck import run_verify_campaign

from conftest import banner, pool_size, record_verify_bench

CPUS = os.cpu_count() or 1

FLOOR_PATH = os.path.join(os.path.dirname(__file__), "bench_floor.json")

#: Waivable on noisy shared runners; the JSON is still emitted.
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

POOL = pool_size(12)


def _static_detections(verify, compiler):
    """Defect ids whose hook point a finding hit in the compile where
    the defect fired (what ``repro-report verify`` tabulates)."""
    points = {d.defect_id: d.point for d in compiler.defects}
    detected = set()
    for program in verify.programs:
        for level, fired in program.fired.items():
            hit = {f.point() for f in program.findings[level]} - {""}
            detected.update(d for d in fired if points.get(d) in hit)
    return detected


def test_verify_vs_dynamic(benchmark):
    compiler = Compiler("gcc", "trunk")
    timings = {}

    def run():
        started = time.perf_counter()
        verify = run_verify_campaign(Compiler("gcc", "trunk"),
                                     pool_size=POOL)
        timings["verify"] = time.perf_counter() - started

        started = time.perf_counter()
        campaign = run_campaign(Compiler("gcc", "trunk"), GdbLike(),
                                pool_size=POOL)
        timings["dynamic"] = time.perf_counter() - started
        return verify, campaign

    verify, campaign = benchmark.pedantic(run, rounds=1, iterations=1)

    verify_rate = POOL / timings["verify"]
    dynamic_rate = POOL / timings["dynamic"]
    verify_ratio = verify_rate / dynamic_rate
    static_ids = _static_detections(verify, compiler)

    record_verify_bench(
        pool=POOL,
        cpus=CPUS,
        verify_levels=len(verify.levels),
        dynamic_levels=len(campaign.levels),
        verify_seconds=round(timings["verify"], 3),
        dynamic_seconds=round(timings["dynamic"], 3),
        verify_programs_per_sec=round(verify_rate, 2),
        dynamic_programs_per_sec=round(dynamic_rate, 2),
        verify_ratio=round(verify_ratio, 2),
        findings=verify.finding_count(),
        static_defect_ids=sorted(static_ids),
    )

    print(banner(f"Static verification throughput ({POOL} programs, "
                 f"{CPUS} cpus)"))
    print(f"  static   {timings['verify']:7.2f}s "
          f"({verify_rate:6.2f} programs/sec, "
          f"{len(verify.levels)} levels incl. O0)")
    print(f"  dynamic  {timings['dynamic']:7.2f}s "
          f"({dynamic_rate:6.2f} programs/sec, "
          f"{len(campaign.levels)} levels)")
    print(f"  ratio: {verify_ratio:.2f}x; static flagged "
          f"{sorted(static_ids)} without running the debugger")

    # The static pass must catch real catalog defects on this pool —
    # the throughput number is meaningless if it verifies nothing.
    assert static_ids, "static verifier flagged no fired defect"

    if STRICT:
        with open(FLOOR_PATH, encoding="utf-8") as handle:
            floor = json.load(handle)["min_verify_programs_per_sec"]
        # Same 30% tolerance as the matrix throughput floor.
        assert verify_rate >= floor * 0.7, \
            (f"static verification at {verify_rate:.2f} programs/sec "
             f"(floor {floor:.1f}, 30% tolerance)")
