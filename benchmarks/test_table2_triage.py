"""Table 2 — triaged culprit optimizations (Section 4.3 / 5.2).

Runs both triage methods over the violations of a program pool — the
gcc-style per-flag search and the clang-style bisection — and prints the
most frequent culprits per conjecture, as Table 2 tabulates. Checks that
the planted ground truth is recovered: every triaged culprit must be the
pass carrying (or enabling) the defect that actually fired.
"""

from collections import Counter

from repro.analysis import SourceFacts
from repro.compilers import Compiler
from repro.conjectures import check_all
from repro.debugger import GdbLike, LldbLike
from repro.triage import triage

from conftest import banner, pool_size, program_pool


def _collect(family, debugger, level, pool, limit_per_program=2):
    compiler = Compiler(family, "trunk")
    counts = {"C1": Counter(), "C2": Counter(), "C3": Counter()}
    triaged = failed = 0
    for program in pool:
        facts = SourceFacts(program)
        compilation = compiler.compile(program, level)
        trace = debugger.trace(compilation.exe)
        violations = check_all(facts, trace)
        seen = set()
        picked = []
        for violation in violations:
            if violation.key() in seen:
                continue
            seen.add(violation.key())
            picked.append(violation)
            if len(picked) >= limit_per_program:
                break
        for violation in picked:
            result = triage(compiler, program, level, debugger,
                            violation, facts)
            if result.failed:
                failed += 1
                continue
            triaged += 1
            counts[violation.conjecture][result.culprit] += 1
    return counts, triaged, failed


def test_table2(benchmark):
    pool = program_pool(pool_size(16))
    holder = {}

    def run():
        holder["gcc"] = _collect("gcc", GdbLike(), "O2", pool)
        holder["clang"] = _collect("clang", LldbLike(), "O2", pool)

    benchmark.pedantic(run, rounds=1, iterations=1)

    for family in ("gcc", "clang"):
        counts, triaged, failed = holder[family]
        method = ("-fno-<flag> search" if family == "gcc"
                  else "opt-bisect-limit")
        print(banner(f"Table 2 ({family}, {method}) — top culprits"))
        for conjecture in ("C1", "C2", "C3"):
            top = counts[conjecture].most_common(5)
            text = ", ".join(f"{name} {n}" for name, n in top) or "-"
            print(f"  {conjecture}: {text}")
        print(f"  triaged: {triaged}, method failed: {failed}")
        assert triaged > 0, f"{family}: no violation was triaged"
