"""Table 2 — triaged culprit optimizations (Section 4.3 / 5.2).

Runs both triage methods over the violations of a program pool — the
gcc-style per-flag search and the clang-style bisection — and renders
the most frequent culprits per conjecture through the ``repro.report``
Table 2 builder (the code path behind ``repro-report table2``). The
per-run :class:`~repro.report.TriageSummary` is the ``repro-triage/1``
artifact value; checks that the planted ground truth is recovered:
every triaged culprit must be the pass carrying (or enabling) the
defect that actually fired.
"""

from repro.analysis import SourceFacts
from repro.compilers import Compiler
from repro.conjectures import check_all
from repro.debugger import GdbLike, LldbLike
from repro.report import TriageSummary, render, table2
from repro.triage import triage

from conftest import banner, pool_size, program_pool


def _collect(family, debugger, level, pool, limit_per_program=2):
    compiler = Compiler(family, "trunk")
    method = "bisect" if family == "clang" else "flags"
    summary = TriageSummary(family=family, method=method)
    for program in pool:
        facts = SourceFacts(program)
        compilation = compiler.compile(program, level)
        trace = debugger.trace(compilation.exe)
        violations = check_all(facts, trace)
        seen = set()
        picked = []
        for violation in violations:
            if violation.key() in seen:
                continue
            seen.add(violation.key())
            picked.append(violation)
            if len(picked) >= limit_per_program:
                break
        for violation in picked:
            summary.add(triage(compiler, program, level, debugger,
                               violation, facts))
    return summary


def test_table2(benchmark):
    pool = program_pool(pool_size(16))
    holder = {}

    def run():
        holder["gcc"] = _collect("gcc", GdbLike(), "O2", pool)
        holder["clang"] = _collect("clang", LldbLike(), "O2", pool)

    benchmark.pedantic(run, rounds=1, iterations=1)

    for family in ("gcc", "clang"):
        summary = holder[family]
        table = table2(summary, top=5)
        print(banner(f"Table 2 ({family}) — top culprits"))
        print(render(table, "text"))
        # The artifact round-trips and re-renders identically.
        restored = TriageSummary.from_json(summary.to_json())
        assert render(table2(restored, top=5), "text") == \
            render(table, "text")
        assert summary.triaged > 0, f"{family}: no violation was triaged"
        # Every rendered count row is a positive culprit tally.
        assert all(row[2] > 0 for row in table.rows)
        assert sum(n for culprits in summary.counts.values()
                   for n in culprits.values()) == summary.triaged
