"""BENCH_serve — what the long-running campaign service costs over the
serial driver, and what its store buys on restart.

Three timed passes over one seed pool (gcc trunk x gdb-like, all
levels):

* *serial* — the reference ``run_campaign`` pass, no store, no HTTP;
* *served* — the same pool end-to-end through the service: HTTP
  submission, bounded-window scheduling over worker threads, streamed
  store writes, HTTP artifact fetch.  The artifact must be
  byte-identical to the serial pass (the service is a deployment of
  the campaign, never a fork of its results);
* *replay* — a second service incarnation over the same store
  assembling the finished job's artifact purely from stored rows
  (zero recompiles, observed through the store's own hit/miss
  counters — structural, not timing-based).

The one timing floor (``min_serve_programs_per_sec`` in
``bench_floor.json``) guards end-to-end served throughput; like every
floor here it is waivable on noisy runners with
``REPRO_BENCH_STRICT=0`` while the differential assertions stay live.
"""

import json
import os
import threading
import time

from repro.compilers.compiler import CompilerSpec
from repro.debugger.specs import DebuggerSpec
from repro.pipeline.campaign import run_campaign
from repro.serve import CampaignService, ServiceClient, build_server

from conftest import banner, pool_size, record_serve_bench

CPUS = os.cpu_count() or 1

FLOOR_PATH = os.path.join(os.path.dirname(__file__), "bench_floor.json")

#: Waivable on noisy shared runners; the JSON is still emitted.
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

POOL = pool_size(12)
WORKERS = min(2, CPUS)


def _serve(store_path, run_job):
    """One service incarnation around ``run_job(service, client)``."""
    service = CampaignService(store_path, workers=WORKERS,
                              unit_seeds=2, poll=0.01)
    service.start()
    server = build_server(service)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05},
                              daemon=True)
    thread.start()
    host, port = server.server_address
    client = ServiceClient(f"http://{host}:{port}")
    try:
        return run_job(service, client)
    finally:
        server.shutdown()
        server.server_close()
        service.drain()
        service.close()


def test_serve_throughput(benchmark, tmp_path):
    store_path = str(tmp_path / "serve.sqlite")
    job = {"schema": "repro-job/1", "family": "gcc",
           "seed_base": 0, "pool_size": POOL}
    timings = {}

    def serve_fresh(service, client):
        started = time.perf_counter()
        submitted = client.submit(job)
        status = client.wait(submitted["job"], timeout=600.0)
        artifact = client.artifact(submitted["job"])
        timings["served"] = time.perf_counter() - started
        assert status["state"] == "done", status
        return submitted["job"], artifact

    def replay(service, client):
        # Assembled on this thread's store connection, so the
        # zero-recompile claim reads off its counters directly.
        store = service.store
        before = (store.stats.hits, store.stats.misses)
        started = time.perf_counter()
        artifact = service.job_artifact(job_id)
        timings["replay"] = time.perf_counter() - started
        counters = (store.stats.hits - before[0],
                    store.stats.misses - before[1])
        return artifact, counters

    def run():
        started = time.perf_counter()
        serial = run_campaign(
            CompilerSpec(family="gcc", version="trunk").build(),
            DebuggerSpec(name="gdb-like").build(), pool_size=POOL)
        timings["serial"] = time.perf_counter() - started
        served = _serve(store_path, serve_fresh)
        return serial, served

    serial, (job_id, served) = benchmark.pedantic(run, rounds=1,
                                                  iterations=1)
    replayed, counters = _serve(store_path, replay)

    serial_rate = POOL / timings["serial"]
    serve_rate = POOL / timings["served"]
    overhead_pct = 100.0 * (timings["served"] / timings["serial"] - 1.0)

    record_serve_bench(
        pool=POOL,
        workers=WORKERS,
        cpus=CPUS,
        serial_seconds=round(timings["serial"], 3),
        served_seconds=round(timings["served"], 3),
        replay_seconds=round(timings["replay"], 3),
        serial_programs_per_sec=round(serial_rate, 2),
        serve_programs_per_sec=round(serve_rate, 2),
        serve_overhead_pct=round(overhead_pct, 1),
        replay_hits=counters[0],
        replay_misses=counters[1],
    )

    print(banner(f"Campaign service ({POOL} programs, {WORKERS} "
                 f"workers, {CPUS} cpus)"))
    print(f"  serial  {timings['serial']:7.2f}s "
          f"({serial_rate:6.2f} programs/sec, in-process)")
    print(f"  served  {timings['served']:7.2f}s "
          f"({serve_rate:6.2f} programs/sec end-to-end over HTTP, "
          f"{overhead_pct:+.1f}%)")
    print(f"  replay  {timings['replay']:7.2f}s "
          f"(restarted service, {counters[0]} store hits, "
          f"{counters[1]} recompiles)")

    # The differential contract, independent of machine speed: served
    # and replayed artifacts are byte-identical to the serial one, and
    # the restart recomputed nothing.
    expected = serial.to_json(indent=2)
    assert json.dumps(served, indent=2, sort_keys=True) == expected
    assert json.dumps(replayed, indent=2, sort_keys=True) == expected
    assert counters == (POOL, 0), "replay must not recompute"

    if STRICT:
        with open(FLOOR_PATH, encoding="utf-8") as handle:
            floor = json.load(handle)["min_serve_programs_per_sec"]
        assert serve_rate >= floor, \
            (f"served campaign at {serve_rate:.2f} programs/sec "
             f"(floor {floor:.1f})")
