"""Shared helpers for the experiment-regeneration benchmarks.

Each benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index). Pool sizes default to laptop-friendly
values; set ``REPRO_BENCH_POOL`` to scale up toward the paper's 1000/5000
program pools.
"""

import json
import os

import pytest

from repro.fuzz import generate_validated

#: Where the campaign wall-clock benchmark lands (satellite of the
#: sharded-campaign PR); override with REPRO_BENCH_CAMPAIGN_OUT.
BENCH_CAMPAIGN_PATH = os.environ.get(
    "REPRO_BENCH_CAMPAIGN_OUT",
    os.path.join(os.path.dirname(__file__), "BENCH_campaign.json"))

#: Where the reduction throughput benchmark lands; override with
#: REPRO_BENCH_REDUCE_OUT.
BENCH_REDUCE_PATH = os.environ.get(
    "REPRO_BENCH_REDUCE_OUT",
    os.path.join(os.path.dirname(__file__), "BENCH_reduce.json"))

#: Where the static-verification throughput benchmark lands; override
#: with REPRO_BENCH_VERIFY_OUT.
BENCH_VERIFY_PATH = os.environ.get(
    "REPRO_BENCH_VERIFY_OUT",
    os.path.join(os.path.dirname(__file__), "BENCH_verify.json"))

#: Where the store-resume benchmark lands; override with
#: REPRO_BENCH_STORE_OUT.
BENCH_STORE_PATH = os.environ.get(
    "REPRO_BENCH_STORE_OUT",
    os.path.join(os.path.dirname(__file__), "BENCH_store.json"))

#: Where the containment-overhead benchmark lands; override with
#: REPRO_BENCH_FAULTS_OUT.
BENCH_FAULTS_PATH = os.environ.get(
    "REPRO_BENCH_FAULTS_OUT",
    os.path.join(os.path.dirname(__file__), "BENCH_faults.json"))

#: Where the version-bisection throughput benchmark lands; override
#: with REPRO_BENCH_BISECT_OUT.
BENCH_BISECT_PATH = os.environ.get(
    "REPRO_BENCH_BISECT_OUT",
    os.path.join(os.path.dirname(__file__), "BENCH_bisect.json"))

#: Where the campaign-service throughput benchmark lands; override
#: with REPRO_BENCH_SERVE_OUT.
BENCH_SERVE_PATH = os.environ.get(
    "REPRO_BENCH_SERVE_OUT",
    os.path.join(os.path.dirname(__file__), "BENCH_serve.json"))

_campaign_bench = {}
_reduce_bench = {}
_verify_bench = {}
_store_bench = {}
_faults_bench = {}
_bisect_bench = {}
_serve_bench = {}


def record_campaign_bench(**fields):
    """Collect serial-vs-parallel campaign timings; written to
    ``BENCH_campaign.json`` at session end."""
    _campaign_bench.update(fields)


def record_reduce_bench(**fields):
    """Collect fast-vs-reference reduction timings; written to
    ``BENCH_reduce.json`` at session end."""
    _reduce_bench.update(fields)


def record_verify_bench(**fields):
    """Collect static-verify vs dynamic-evaluation timings; written to
    ``BENCH_verify.json`` at session end."""
    _verify_bench.update(fields)


def record_store_bench(**fields):
    """Collect fresh-vs-resumed campaign timings; written to
    ``BENCH_store.json`` at session end."""
    _store_bench.update(fields)


def record_faults_bench(**fields):
    """Collect contained-vs-bare campaign timings; written to
    ``BENCH_faults.json`` at session end."""
    _faults_bench.update(fields)


def record_bisect_bench(**fields):
    """Collect version-bisection probe/timing accounting; written to
    ``BENCH_bisect.json`` at session end."""
    _bisect_bench.update(fields)


def record_serve_bench(**fields):
    """Collect served-vs-serial campaign timings; written to
    ``BENCH_serve.json`` at session end."""
    _serve_bench.update(fields)


def pytest_sessionfinish(session, exitstatus):
    for data, path in ((_campaign_bench, BENCH_CAMPAIGN_PATH),
                       (_reduce_bench, BENCH_REDUCE_PATH),
                       (_verify_bench, BENCH_VERIFY_PATH),
                       (_store_bench, BENCH_STORE_PATH),
                       (_faults_bench, BENCH_FAULTS_PATH),
                       (_bisect_bench, BENCH_BISECT_PATH),
                       (_serve_bench, BENCH_SERVE_PATH)):
        if data:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(data, handle, indent=2, sort_keys=True)
                handle.write("\n")


def pool_size(default):
    return int(os.environ.get("REPRO_BENCH_POOL", default))


_PROGRAM_CACHE = {}


def program_pool(count, seed_base=0):
    """Shared, cached program pool so every experiment sees the same
    subjects (as the paper's regression study requires)."""
    key = (count, seed_base)
    if key not in _PROGRAM_CACHE:
        _PROGRAM_CACHE[key] = [
            generate_validated(seed_base + i) for i in range(count)
        ]
    return _PROGRAM_CACHE[key]


def banner(title):
    line = "=" * len(title)
    return f"\n{line}\n{title}\n{line}"
