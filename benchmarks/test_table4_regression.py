"""Table 4 — violations across compiler versions (Section 5.4).

Regenerates the regression study on a fixed program pool and renders it
through the ``repro.report`` Table 4 builder (the code path behind
``repro-report table4``), asserting on the rendered version columns:

* gcc 4 / 8 / trunk / patched — the ``patched`` column carries the
  cleanup-CFG fix (bug 105158), which must cut Conjecture 1 violations
  substantially (the paper measured −63.5%) and nudge C2/C3 down;
* clang 5 / 9 / trunk / trunk* — ``trunk*`` carries the partial LSR fix,
  which must cut the LSR-attributed C2 violations (paper: −80.4%);
* violations generally decrease from old releases to trunk;
* the availability-of-variables metric at gcc -O1 improves from trunk to
  patched, closing part of the gap to -Og (paper: 0.8562 -> 0.8633 vs
  0.8758).
"""

from repro.compilers import Compiler
from repro.conjectures import C1, C2, C3
from repro.debugger import GdbLike, LldbLike
from repro.metrics import run_study
from repro.pipeline import run_campaign_on_programs
from repro.report import fig1_table, render, table4

from conftest import banner, pool_size, program_pool

GCC_COLS = ("4", "8", "trunk", "patched")
CLANG_COLS = ("5", "9", "trunk", "trunk-star")


def test_table4(benchmark):
    pool = program_pool(pool_size(30))
    campaigns = {}

    def run():
        for family, versions, debugger in (
                ("gcc", GCC_COLS, GdbLike()),
                ("clang", CLANG_COLS, LldbLike())):
            for version in versions:
                compiler = Compiler(family, version)
                campaigns[(family, version)] = run_campaign_on_programs(
                    pool, compiler, debugger)

    benchmark.pedantic(run, rounds=1, iterations=1)

    tables = {}
    print(banner("Table 4 — unique violations across versions"))
    for family, versions in (("gcc", GCC_COLS), ("clang", CLANG_COLS)):
        tables[family] = table4(
            [campaigns[(family, v)] for v in versions])
        print(render(tables[family], "text"))

    def unique(family, version, conjecture):
        return tables[family].lookup(conjecture, f"{family}-{version}")

    assert unique("gcc", "patched", C1) < unique("gcc", "trunk", C1), \
        "the 105158 patch must reduce gcc C1 violations"
    assert unique("gcc", "patched", C2) <= unique("gcc", "trunk", C2)
    assert unique("gcc", "patched", C3) <= unique("gcc", "trunk", C3)

    # The LSR fix never *adds* violations; the paper's -80.4% LSR drop
    # reproduces only on programs whose induction variables LSR fully
    # eliminates (see tests/test_passes.py) — the fuzz pool's IVs mostly
    # have extra uses, so the aggregate delta is small here (deviation
    # recorded in EXPERIMENTS.md).
    assert campaigns[("clang", "trunk-star")].count("Og", C2) <= \
        campaigns[("clang", "trunk")].count("Og", C2)
    assert unique("clang", "trunk-star", C2) <= \
        unique("clang", "trunk", C2)

    # Old releases lose more than trunk.
    assert unique("gcc", "4", C2) >= unique("gcc", "trunk", C2)
    assert unique("clang", "5", C2) >= unique("clang", "trunk", C2)


def test_table4_availability_gap(benchmark):
    """The 105158 fix closes part of the -O1 vs -Og availability gap."""
    pool = program_pool(pool_size(16))
    holder = {}

    def run():
        holder["study"] = run_study(
            pool, "gcc", ("trunk", "patched"), ("O1", "Og"), GdbLike())

    benchmark.pedantic(run, rounds=1, iterations=1)
    study = holder["study"]
    table = fig1_table(study, "availability")
    print(banner("gcc availability-of-variables (Section 5.4)"))
    print(render(table, "text"))
    trunk_o1 = table.lookup("trunk", "O1")
    patched_o1 = table.lookup("patched", "O1")
    assert trunk_o1 == study.cell("trunk", "O1").availability
    assert patched_o1 >= trunk_o1, \
        "the patch must not worsen -O1 availability"
