"""Table 4 — violations across compiler versions (Section 5.4).

Regenerates the regression study on a fixed program pool:

* gcc 4 / 8 / trunk / patched — the ``patched`` column carries the
  cleanup-CFG fix (bug 105158), which must cut Conjecture 1 violations
  substantially (the paper measured −63.5%) and nudge C2/C3 down;
* clang 5 / 9 / trunk / trunk* — ``trunk*`` carries the partial LSR fix,
  which must cut the LSR-attributed C2 violations (paper: −80.4%);
* violations generally decrease from old releases to trunk;
* the availability-of-variables metric at gcc -O1 improves from trunk to
  patched, closing part of the gap to -Og (paper: 0.8562 -> 0.8633 vs
  0.8758).
"""

from repro.compilers import Compiler
from repro.conjectures import C1, C2, C3
from repro.debugger import GdbLike, LldbLike
from repro.metrics import run_study
from repro.pipeline import run_campaign_on_programs

from conftest import banner, pool_size, program_pool

GCC_COLS = ("4", "8", "trunk", "patched")
CLANG_COLS = ("5", "9", "trunk", "trunk-star")


def test_table4(benchmark):
    pool = program_pool(pool_size(30))
    table = {}

    def run():
        for family, versions, debugger in (
                ("gcc", GCC_COLS, GdbLike()),
                ("clang", CLANG_COLS, LldbLike())):
            for version in versions:
                compiler = Compiler(family, version)
                result = run_campaign_on_programs(pool, compiler,
                                                  debugger)
                cells = {c: result.unique_count(c) for c in (C1, C2, C3)}
                cells["C2@Og"] = result.count("Og", C2)
                table[(family, version)] = cells

    benchmark.pedantic(run, rounds=1, iterations=1)

    print(banner("Table 4 — unique violations across versions"))
    for family, versions in (("gcc", GCC_COLS), ("clang", CLANG_COLS)):
        print(f"\n{family}: " + "  ".join(f"{v:>10}" for v in versions))
        for conjecture in (C1, C2, C3):
            cells = [table[(family, v)][conjecture] for v in versions]
            print(f"  {conjecture}: " +
                  "  ".join(f"{c:>10}" for c in cells))

    gcc_trunk = table[("gcc", "trunk")]
    gcc_patched = table[("gcc", "patched")]
    assert gcc_patched[C1] < gcc_trunk[C1], \
        "the 105158 patch must reduce gcc C1 violations"
    assert gcc_patched[C2] <= gcc_trunk[C2]
    assert gcc_patched[C3] <= gcc_trunk[C3]

    clang_trunk = table[("clang", "trunk")]
    clang_star = table[("clang", "trunk-star")]
    # The LSR fix never *adds* violations; the paper's -80.4% LSR drop
    # reproduces only on programs whose induction variables LSR fully
    # eliminates (see tests/test_passes.py) — the fuzz pool's IVs mostly
    # have extra uses, so the aggregate delta is small here (deviation
    # recorded in EXPERIMENTS.md).
    assert clang_star["C2@Og"] <= clang_trunk["C2@Og"]
    assert clang_star[C2] <= clang_trunk[C2]

    # Old releases lose more than trunk.
    assert table[("gcc", "4")][C2] >= gcc_trunk[C2]
    assert table[("clang", "5")][C2] >= clang_trunk[C2]


def test_table4_availability_gap(benchmark):
    """The 105158 fix closes part of the -O1 vs -Og availability gap."""
    pool = program_pool(pool_size(16))
    holder = {}

    def run():
        holder["study"] = run_study(
            pool, "gcc", ("trunk", "patched"), ("O1", "Og"), GdbLike())

    benchmark.pedantic(run, rounds=1, iterations=1)
    study = holder["study"]
    trunk_o1 = study.cell("trunk", "O1").availability
    patched_o1 = study.cell("patched", "O1").availability
    trunk_og = study.cell("trunk", "Og").availability
    print(banner("gcc availability-of-variables (Section 5.4)"))
    print(f"  trunk   -O1: {trunk_o1:.4f}")
    print(f"  patched -O1: {patched_o1:.4f}")
    print(f"  trunk   -Og: {trunk_og:.4f}")
    assert patched_o1 >= trunk_o1, \
        "the patch must not worsen -O1 availability"
