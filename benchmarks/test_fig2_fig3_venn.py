"""Figures 2 & 3 — Venn regions of unique violations across levels.

Regenerates the level-combination counts the paper's Venn diagrams plot
(-Oz left out, violations cumulated over conjectures) and checks the
anti-symmetric trends: clang concentrates violations at all levels and at
-Og(-only / with -Os), while gcc's biggest regions *exclude* -Og/-O1.
"""

from repro.compilers import Compiler
from repro.debugger import GdbLike, LldbLike
from repro.pipeline import run_campaign_on_programs

from conftest import banner, pool_size, program_pool


def _print_regions(title, regions):
    print(banner(title))
    for combo, count in sorted(regions.items(), key=lambda kv: -kv[1]):
        print(f"  {'+'.join(sorted(combo)):>20}: {count}")


def test_fig2_venn_clang(benchmark):
    pool = program_pool(pool_size(40))
    holder = {}

    def run():
        holder["result"] = run_campaign_on_programs(
            pool, Compiler("clang", "trunk"), LldbLike())

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = holder["result"]
    regions = result.venn(exclude=("Oz",))
    _print_regions("Figure 2 (clang) unique violations per level set",
                   regions)
    all_levels = frozenset(l for l in result.levels if l != "Oz")
    og_only = frozenset(["Og"])
    assert regions, "no violations at all"
    assert regions.get(og_only, 0) > 0, "clang must have Og-only region"
    assert regions.get(all_levels, 0) > 0, \
        "clang must have an all-levels region"


def test_fig3_venn_gcc(benchmark):
    pool = program_pool(pool_size(40))
    holder = {}

    def run():
        holder["result"] = run_campaign_on_programs(
            pool, Compiler("gcc", "trunk"), GdbLike())

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = holder["result"]
    regions = result.venn(exclude=("Oz",))
    _print_regions("Figure 3 (gcc) unique violations per level set",
                   regions)
    all_levels = frozenset(l for l in result.levels if l != "Oz")
    all_but_og_o1 = all_levels - {"Og", "O1"}
    # The paper's anti-symmetric trend: the "all levels except -Og/-O1"
    # region dominates the "all levels" region for gcc.
    assert regions.get(all_but_og_o1, 0) > regions.get(all_levels, 0), \
        f"expected {all_but_og_o1} to dominate: {regions}"
    og_only = regions.get(frozenset(["Og"]), 0)
    assert og_only > 0, "gcc must retain an Og-only region (C3 bugs)"
