"""Figures 2 & 3 — Venn regions of unique violations across levels.

Regenerates the level-combination counts the paper's Venn diagrams plot
(-Oz left out, violations cumulated over conjectures) and checks the
anti-symmetric trends: clang concentrates violations at all levels and at
-Og(-only / with -Os), while gcc's biggest regions *exclude* -Og/-O1.

Region counts are read back out of the ``repro.report`` Venn builder
(the code path behind ``repro-report venn``), not the raw campaign.
"""

from repro.compilers import Compiler
from repro.debugger import GdbLike, LldbLike
from repro.pipeline import run_campaign_on_programs
from repro.report import render, venn_regions, venn_table

from conftest import banner, pool_size, program_pool


def _regions_of(result):
    """{'+'.joined level combo -> count} via the report builder."""
    return dict(venn_regions(result, exclude=("Oz",)))


def _combo(levels):
    return "+".join(sorted(levels))


def test_fig2_venn_clang(benchmark):
    pool = program_pool(pool_size(40))
    holder = {}

    def run():
        holder["result"] = run_campaign_on_programs(
            pool, Compiler("clang", "trunk"), LldbLike())

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = holder["result"]
    print(banner("Figure 2 (clang) unique violations per level set"))
    print(render(venn_table(result), "text"))
    regions = _regions_of(result)
    all_levels = _combo(l for l in result.levels if l != "Oz")
    assert regions, "no violations at all"
    assert regions.get("Og", 0) > 0, "clang must have Og-only region"
    assert regions.get(all_levels, 0) > 0, \
        "clang must have an all-levels region"


def test_fig3_venn_gcc(benchmark):
    pool = program_pool(pool_size(40))
    holder = {}

    def run():
        holder["result"] = run_campaign_on_programs(
            pool, Compiler("gcc", "trunk"), GdbLike())

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = holder["result"]
    print(banner("Figure 3 (gcc) unique violations per level set"))
    print(render(venn_table(result), "text"))
    regions = _regions_of(result)
    all_levels = _combo(l for l in result.levels if l != "Oz")
    all_but_og_o1 = _combo(l for l in result.levels
                           if l not in ("Oz", "Og", "O1"))
    # The paper's anti-symmetric trend: the "all levels except -Og/-O1"
    # region dominates the "all levels" region for gcc.
    assert regions.get(all_but_og_o1, 0) > regions.get(all_levels, 0), \
        f"expected {all_but_og_o1} to dominate: {regions}"
    assert regions.get("Og", 0) > 0, \
        "gcc must retain an Og-only region (C3 bugs)"
