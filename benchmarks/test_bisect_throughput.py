"""BENCH_bisect — version-axis bisection throughput and probe reuse.

One timed pass per stage over one seed pool and one cell (gcc trunk x
gdb-like): the *find* campaign that produces the witnesses, a *fresh*
serial bisection of every witness (also populating a store file), and
a store-backed *replay* of the same bisection (every witness a
``bisections`` hit — zero probes, the regression table for free).

The quality bar here is probe amortization, not wall-clock: the
prober memoizes verdicts by ``(module_fingerprint, version)``, so
firing questions the searches repeat (shared full verdicts during
discovery, re-consulted boundary versions across defects of one
witness) must be answered from memo.  ``probe_reuse`` — memo hits
over consults — is a deterministic ratio of the pool, so the
``min_bisect_probe_reuse`` floor is machine-independent and enforced
even on noisy runners unless ``REPRO_BENCH_STRICT=0``.
"""

import json
import os
import time

from repro import Compiler, GdbLike
from repro.bisect import run_bisect_campaign
from repro.pipeline import run_campaign
from repro.store import CampaignStore

from conftest import banner, pool_size, record_bisect_bench

CPUS = os.cpu_count() or 1

FLOOR_PATH = os.path.join(os.path.dirname(__file__), "bench_floor.json")

#: Waivable on noisy shared runners; the JSON is still emitted.
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

POOL = pool_size(12)


def test_bisect_throughput(benchmark, tmp_path):
    path = str(tmp_path / "bisect.sqlite")
    timings = {}

    def run():
        started = time.perf_counter()
        campaign = run_campaign(Compiler("gcc", "trunk"), GdbLike(),
                                pool_size=POOL)
        timings["find"] = time.perf_counter() - started

        started = time.perf_counter()
        with CampaignStore(path) as store:
            fresh = run_bisect_campaign(campaign, store=store)
            stored = store.stats.bisections_stored
        timings["bisect"] = time.perf_counter() - started

        started = time.perf_counter()
        with CampaignStore(path) as store:
            replay = run_bisect_campaign(campaign, store=store)
            reused = store.stats.bisections_reused
        timings["replay"] = time.perf_counter() - started
        return fresh, replay, stored, reused

    fresh, replay, stored, reused = benchmark.pedantic(
        run, rounds=1, iterations=1)

    stats = fresh.stats
    probe_reuse = stats["memo_hits"] / max(1, stats["consults"])
    witnesses = fresh.witnesses
    bisect_rate = witnesses / timings["bisect"]
    replay_speedup = (timings["bisect"] / timings["replay"]
                      if timings["replay"] else float("inf"))

    record_bisect_bench(
        pool=POOL,
        cpus=CPUS,
        find_seconds=round(timings["find"], 3),
        bisect_seconds=round(timings["bisect"], 3),
        replay_seconds=round(timings["replay"], 3),
        witnesses=witnesses,
        records=len(fresh.records),
        consults=stats["consults"],
        probes=stats["probes"],
        memo_hits=stats["memo_hits"],
        probe_reuse=round(probe_reuse, 3),
        witnesses_per_sec=round(bisect_rate, 2),
        replay_speedup=round(replay_speedup, 2),
    )

    print(banner(f"Version bisection ({POOL} programs, {CPUS} cpus)"))
    print(f"  find    {timings['find']:7.2f}s ({POOL} programs)")
    print(f"  bisect  {timings['bisect']:7.2f}s ({witnesses} witnesses, "
          f"{len(fresh.records)} windows, {stats['probes']} probes)")
    print(f"  replay  {timings['replay']:7.2f}s "
          f"({replay_speedup:.1f}x, zero probes)")
    print(f"  probe reuse: {stats['memo_hits']}/{stats['consults']} "
          f"consults from memo ({probe_reuse:.1%})")

    # Structural contracts, independent of machine speed: the
    # accounting identity, full store coverage, and a replay that is
    # bit-identical without recomputing a single window.
    assert stats["consults"] == stats["probes"] + stats["memo_hits"]
    assert stored == witnesses and reused == witnesses
    assert replay.to_json() == fresh.to_json(), \
        "replayed bisection must be bit-identical to the fresh run"
    assert replay.stats == stats, \
        "replay must report the fresh run's probe accounting"

    if STRICT:
        with open(FLOOR_PATH, encoding="utf-8") as handle:
            floor = json.load(handle)["min_bisect_probe_reuse"]
        assert probe_reuse >= floor, \
            (f"bisection probe reuse at {probe_reuse:.3f} "
             f"(floor {floor:.2f})")
