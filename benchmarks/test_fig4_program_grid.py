"""Figure 4 — per-program conjecture-violation grid across gcc versions.

Regenerates the colored grid: for each test program (a cell) and each gcc
version (a panel), how many of the three conjectures the program violates
at any level. Prints one character per program (0-3) and checks that the
total violated-conjecture mass shrinks from old releases toward the
patched trunk.
"""

from repro.compilers import Compiler
from repro.debugger import GdbLike
from repro.pipeline import run_campaign_on_programs

from conftest import banner, pool_size, program_pool

VERSIONS = ("4", "8", "trunk", "patched")
PER_ROW = 25


def test_fig4(benchmark):
    pool = program_pool(pool_size(30))
    grids = {}

    def run():
        for version in VERSIONS:
            result = run_campaign_on_programs(
                pool, Compiler("gcc", version), GdbLike())
            grids[version] = result.grid_row()

    benchmark.pedantic(run, rounds=1, iterations=1)

    print(banner("Figure 4 — conjectures violated per program (gcc)"))
    for version in VERSIONS:
        row = grids[version]
        print(f"\ngcc {version} (total {sum(row)}):")
        for start in range(0, len(row), PER_ROW):
            print("  " + "".join(str(v) for v in row[start:start + PER_ROW]))

    totals = {v: sum(grids[v]) for v in VERSIONS}
    assert totals["4"] >= totals["trunk"], totals
    assert totals["patched"] <= totals["trunk"], totals
    assert all(0 <= v <= 3 for row in grids.values() for v in row)
