"""Figure 1 — the quantitative study (Section 2).

Regenerates the nine panels' data: line coverage, availability of
variables, and their product, per compiler version and optimization
level, averaged over a program pool. Checks the headline trends:

* -Og preserves more lines than aggressive levels (except latest clang,
  whose trunk enables loop removal at -Og);
* availability improves from the oldest release to trunk;
* by the product metric, gcc's -Og retains the most information.
"""

from repro.debugger import GdbLike, LldbLike
from repro.metrics import run_study
from repro.report import fig1_tables, render

from conftest import banner, pool_size, program_pool

GCC_VERSIONS = ("4", "6", "8", "10", "trunk")
CLANG_VERSIONS = ("5", "7", "9", "11", "trunk")
GCC_LEVELS = ("Og", "O1", "O2", "O3", "Os")
CLANG_LEVELS = ("Og", "O2", "O3", "Os")


def test_fig1(benchmark):
    pool = program_pool(pool_size(10))
    studies = {}

    def run():
        studies["gcc"] = run_study(pool, "gcc", GCC_VERSIONS,
                                   GCC_LEVELS, GdbLike())
        studies["clang"] = run_study(pool, "clang", CLANG_VERSIONS,
                                     CLANG_LEVELS, LldbLike())

    benchmark.pedantic(run, rounds=1, iterations=1)

    # Render the nine panels through the repro.report builders (the
    # code path behind ``repro-report fig1``).
    panels = {}
    for family in ("clang", "gcc"):
        study = studies[family]
        for table in fig1_tables(study):
            print(banner(f"{table.title} ({family})"))
            print(render(table, "text"))
            panels[(family, table.kind)] = table

    gcc = studies["gcc"]
    clang = studies["clang"]

    # -Og preserves significantly more lines than -O3 for gcc,
    # asserted through the rendered panel cells.
    coverage = panels[("gcc", "fig1_line_coverage")]
    for version in GCC_VERSIONS:
        assert coverage.lookup(version, "Og") >= \
            coverage.lookup(version, "O3")
        assert coverage.lookup(version, "Og") == \
            gcc.cell(version, "Og").line_coverage

    # Availability improves from the oldest release to trunk.
    assert gcc.cell("trunk", "O2").availability > \
        gcc.cell("4", "O2").availability
    assert clang.cell("trunk", "O2").availability > \
        clang.cell("5", "O2").availability

    # Latest clang's aggressive -Og loop removal: trunk covers fewer
    # lines at -Og than the older releases did.
    assert clang.cell("trunk", "Og").line_coverage <= \
        clang.cell("9", "Og").line_coverage

    # Combined product: gcc -Og retains the most information on trunk.
    best = max(GCC_LEVELS,
               key=lambda level: gcc.cell("trunk", level).product)
    assert best == "Og", f"expected Og to win the product metric, {best}"
