"""BENCH_store — what resuming a campaign from the persistent store
saves over recomputing it.

Three timed passes over one seed pool and one cell (gcc trunk x
gdb-like, all levels): a *fresh* run that also populates a store file,
an *incremental* run after the pool grows (only the new seeds may
touch the compiler), and a full *replay* of the final pool (every seed
a store hit — zero compiles, the paper tables for free). The replay
artifact must be bit-identical to a storeless run, which is the
whole contract: the store is a cache, never a fork of the results.
Compile work is observed through the store's own hit/miss counters,
so the zero-compile claims are structural, not timing-based; the one
timing assertion (replay speedup over fresh) is waivable with
``REPRO_BENCH_STRICT=0`` like every other floor here.
"""

import json
import os
import time

from repro import Compiler, GdbLike
from repro.pipeline import run_campaign
from repro.store import CampaignStore

from conftest import banner, pool_size, record_store_bench

CPUS = os.cpu_count() or 1

FLOOR_PATH = os.path.join(os.path.dirname(__file__), "bench_floor.json")

#: Waivable on noisy shared runners; the JSON is still emitted.
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

POOL = pool_size(16)
PARTIAL = max(1, POOL // 2)


def test_store_resume(benchmark, tmp_path):
    path = str(tmp_path / "campaign.sqlite")
    timings = {}
    counters = {}

    def timed(label, store, pool):
        started = time.perf_counter()
        before = (store.stats.hits, store.stats.misses)
        result = run_campaign(Compiler("gcc", "trunk"), GdbLike(),
                              pool_size=pool, store=store)
        timings[label] = time.perf_counter() - started
        counters[label] = (store.stats.hits - before[0],
                           store.stats.misses - before[1])
        return result

    def run():
        with CampaignStore(path) as store:
            timed("fresh", store, PARTIAL)
            resumed = timed("incremental", store, POOL)
            replay = timed("replay", store, POOL)
        return resumed, replay

    resumed, replay = benchmark.pedantic(run, rounds=1, iterations=1)

    fresh_rate = PARTIAL / timings["fresh"]
    replay_rate = POOL / timings["replay"]
    # Per-program replay time over per-program fresh time.
    replay_speedup = replay_rate / fresh_rate

    record_store_bench(
        pool=POOL,
        partial_pool=PARTIAL,
        cpus=CPUS,
        fresh_seconds=round(timings["fresh"], 3),
        incremental_seconds=round(timings["incremental"], 3),
        replay_seconds=round(timings["replay"], 3),
        fresh_programs_per_sec=round(fresh_rate, 2),
        replay_programs_per_sec=round(replay_rate, 2),
        replay_speedup=round(replay_speedup, 2),
        incremental_hits=counters["incremental"][0],
        incremental_misses=counters["incremental"][1],
    )

    print(banner(f"Store resume ({POOL} programs, {CPUS} cpus)"))
    print(f"  fresh        {timings['fresh']:7.2f}s "
          f"({PARTIAL} programs, {fresh_rate:6.2f} programs/sec)")
    print(f"  incremental  {timings['incremental']:7.2f}s "
          f"({counters['incremental'][1]} new programs compiled, "
          f"{counters['incremental'][0]} reused)")
    print(f"  replay       {timings['replay']:7.2f}s "
          f"({replay_rate:6.2f} programs/sec, zero compiles)")
    print(f"  replay speedup over fresh: {replay_speedup:.2f}x")

    # Structural resume contract, independent of machine speed.
    assert counters["fresh"] == (0, PARTIAL)
    assert counters["incremental"] == (PARTIAL, POOL - PARTIAL)
    assert counters["replay"] == (POOL, 0), "replay must not recompute"
    assert resumed == replay

    # Bit-identical to a storeless run of the same pool.
    fresh_full = run_campaign(Compiler("gcc", "trunk"), GdbLike(),
                              pool_size=POOL)
    assert replay.to_json() == fresh_full.to_json(), \
        "resumed artifact must be bit-identical to a storeless run"

    if STRICT:
        with open(FLOOR_PATH, encoding="utf-8") as handle:
            floor = json.load(handle)["min_store_replay_speedup"]
        assert replay_speedup >= floor, \
            (f"store replay at {replay_speedup:.2f}x over fresh "
             f"(floor {floor:.1f}x)")
