"""BENCH_campaign — wall-clock of the Table 1 campaign: serial vs
sharded, and the compile-once matrix vs the per-cell baseline (the
ROADMAP's "fast as the hardware allows" trajectory).

Two measurements land in ``BENCH_campaign.json`` (via conftest's
session-finish hook):

* **serial vs sharded** — the same gcc-trunk campaign through the serial
  driver and across worker processes; results must be bit-identical and
  the sharded run must beat serial (``speedup > 1``) whenever there is
  more than one core to shard across.
* **matrix vs per-cell** — the full (gcc+clang) x all-levels x
  (gdb-like+lldb-like) grid through :func:`run_matrix_campaign` versus
  one :func:`run_campaign` per cell, measured in the same run on the
  same seeds.  Every cell must be ``to_json()``-identical and the matrix
  driver must be at least 2x faster (``matrix_speedup``), with a
  checked-in throughput floor (``bench_floor.json``) guarding against
  >30% serial-throughput regressions.

``REPRO_BENCH_STRICT=0`` waives the assertions (noisy shared runners);
the data points are always emitted.
"""

import json
import os
import time

from repro.compilers import Compiler, CompilerSpec
from repro.debugger import DebuggerSpec, GdbLike, LldbLike
from repro.fuzz import generate_validated
from repro.pipeline import (
    run_campaign, run_campaign_parallel, run_matrix_campaign,
)

from conftest import banner, pool_size, record_campaign_bench

CPUS = os.cpu_count() or 1

FLOOR_PATH = os.path.join(os.path.dirname(__file__), "bench_floor.json")

#: Waivable on noisy shared runners; the JSON is still emitted.
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"


def test_campaign_serial_vs_parallel(benchmark):
    count = pool_size(100)
    workers = min(4, max(2, CPUS))
    timings = {}

    def run():
        started = time.perf_counter()
        serial = run_campaign(Compiler("gcc", "trunk"), GdbLike(),
                              pool_size=count)
        timings["serial"] = time.perf_counter() - started
        started = time.perf_counter()
        parallel = run_campaign_parallel(
            CompilerSpec("gcc", "trunk"), DebuggerSpec("gdb-like"),
            pool_size=count, workers=workers)
        timings["parallel"] = time.perf_counter() - started
        return serial, parallel

    serial, parallel = benchmark.pedantic(run, rounds=1, iterations=1)

    # The differential guarantee, at campaign scale.
    assert parallel == serial
    assert parallel.table1() == serial.table1()

    speedup = timings["serial"] / timings["parallel"]
    record_campaign_bench(
        pool_size=count,
        workers=workers,
        cpus=CPUS,
        serial_seconds=round(timings["serial"], 3),
        parallel_seconds=round(timings["parallel"], 3),
        serial_programs_per_sec=round(count / timings["serial"], 2),
        parallel_programs_per_sec=round(count / timings["parallel"], 2),
        speedup=round(speedup, 2),
    )

    print(banner(f"Campaign wall-clock ({count} programs, "
                 f"{workers} workers, {CPUS} cpus)"))
    print(f"  serial:   {timings['serial']:7.2f}s "
          f"({count / timings['serial']:6.2f} programs/sec)")
    print(f"  parallel: {timings['parallel']:7.2f}s "
          f"({count / timings['parallel']:6.2f} programs/sec)")
    print(f"  speedup:  {speedup:.2f}x")

    # Sharding must pay for its spawn overhead wherever there is any
    # parallel hardware at all; batched dispatch plus the per-worker
    # toolchain memo is what keeps this above water at 2 cores.
    if STRICT and CPUS >= 2 and count >= 50:
        assert speedup > 1.0, \
            f"sharded campaign no faster on {CPUS} cores: {speedup:.2f}x"
    if STRICT and CPUS >= 4 and count >= 50:
        assert speedup >= 1.5, \
            f"sharded campaign too slow on {CPUS} cores: {speedup:.2f}x"


def test_matrix_vs_per_cell(benchmark):
    count = pool_size(24)
    families = ("gcc", "clang")
    debugger_classes = (GdbLike, LldbLike)
    timings = {}

    def run():
        # Each phase is priced as fresh processes would pay it: the
        # per-cell baseline is four independent campaign runs (exactly
        # what four `repro-campaign` invocations do), so every run
        # regenerates the pool; the matrix pays the frontend once.
        # Two rounds, best-of per phase, to shave scheduler noise.
        per_cell = matrix = None
        timings["per_cell"] = timings["matrix"] = float("inf")
        for _round in range(2):
            started = time.perf_counter()
            results = {}
            for family in families:
                for cls in debugger_classes:
                    generate_validated.cache_clear()
                    results[(family, cls.name)] = run_campaign(
                        Compiler(family, "trunk"), cls(),
                        pool_size=count)
            timings["per_cell"] = min(timings["per_cell"],
                                      time.perf_counter() - started)
            per_cell = results

            generate_validated.cache_clear()
            started = time.perf_counter()
            matrix = run_matrix_campaign(pool_size=count,
                                         families=families)
            timings["matrix"] = min(timings["matrix"],
                                    time.perf_counter() - started)
        return per_cell, matrix

    per_cell, matrix = benchmark.pedantic(run, rounds=1, iterations=1)

    # The differential guarantee, at matrix scale: every cell byte-equal.
    for (family, debugger_name), result in per_cell.items():
        cell = matrix.cell(family, "trunk", debugger_name)
        assert cell.to_json() == result.to_json(), (family, debugger_name)

    matrix_rate = count / timings["matrix"]
    percell_rate = count / timings["per_cell"]
    matrix_speedup = timings["per_cell"] / timings["matrix"]
    record_campaign_bench(
        matrix_pool_size=count,
        matrix_cells=len(matrix.cells),
        matrix_seconds=round(timings["matrix"], 3),
        percell_seconds=round(timings["per_cell"], 3),
        matrix_programs_per_sec=round(matrix_rate, 2),
        percell_programs_per_sec=round(percell_rate, 2),
        matrix_speedup=round(matrix_speedup, 2),
    )

    print(banner(f"Matrix wall-clock ({count} programs, "
                 f"{len(matrix.cells)} cells)"))
    print(f"  per-cell: {timings['per_cell']:7.2f}s "
          f"({percell_rate:6.2f} programs/sec)")
    print(f"  matrix:   {timings['matrix']:7.2f}s "
          f"({matrix_rate:6.2f} programs/sec)")
    print(f"  speedup:  {matrix_speedup:.2f}x")

    if STRICT and count >= 20:
        # The compile-once acceptance bar: serial matrix throughput at
        # least 2x the per-cell baseline measured in the same run.
        assert matrix_speedup >= 2.0, \
            f"matrix driver only {matrix_speedup:.2f}x over per-cell"
        # Regression floor: more than 30% below the checked-in serial
        # matrix throughput fails the bench.
        with open(FLOOR_PATH, encoding="utf-8") as handle:
            floor = json.load(handle)["min_matrix_programs_per_sec"]
        assert matrix_rate >= 0.7 * floor, \
            (f"serial matrix throughput regressed >30%: "
             f"{matrix_rate:.2f}/s vs floor {floor:.2f}/s")
