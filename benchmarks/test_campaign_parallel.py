"""BENCH_campaign — wall-clock of the Table 1 campaign, serial vs
sharded (the ROADMAP's "fast as the hardware allows" trajectory).

Runs the same gcc-trunk campaign twice — once through the serial driver,
once sharded across worker processes — asserts the results are
bit-identical, and records wall-clock plus programs/sec for both into
``BENCH_campaign.json`` (via conftest's session-finish hook). The
speedup floor is only enforced on machines with >= 4 cores; single-core
containers still emit the data points.
"""

import os
import time

from repro.compilers import Compiler, CompilerSpec
from repro.debugger import DebuggerSpec, GdbLike
from repro.pipeline import run_campaign, run_campaign_parallel

from conftest import banner, pool_size, record_campaign_bench

CPUS = os.cpu_count() or 1


def test_campaign_serial_vs_parallel(benchmark):
    count = pool_size(100)
    workers = min(4, max(2, CPUS))
    timings = {}

    def run():
        started = time.perf_counter()
        serial = run_campaign(Compiler("gcc", "trunk"), GdbLike(),
                              pool_size=count)
        timings["serial"] = time.perf_counter() - started
        started = time.perf_counter()
        parallel = run_campaign_parallel(
            CompilerSpec("gcc", "trunk"), DebuggerSpec("gdb-like"),
            pool_size=count, workers=workers)
        timings["parallel"] = time.perf_counter() - started
        return serial, parallel

    serial, parallel = benchmark.pedantic(run, rounds=1, iterations=1)

    # The differential guarantee, at campaign scale.
    assert parallel == serial
    assert parallel.table1() == serial.table1()

    speedup = timings["serial"] / timings["parallel"]
    record_campaign_bench(
        pool_size=count,
        workers=workers,
        cpus=CPUS,
        serial_seconds=round(timings["serial"], 3),
        parallel_seconds=round(timings["parallel"], 3),
        serial_programs_per_sec=round(count / timings["serial"], 2),
        parallel_programs_per_sec=round(count / timings["parallel"], 2),
        speedup=round(speedup, 2),
    )

    print(banner(f"Campaign wall-clock ({count} programs, "
                 f"{workers} workers, {CPUS} cpus)"))
    print(f"  serial:   {timings['serial']:7.2f}s "
          f"({count / timings['serial']:6.2f} programs/sec)")
    print(f"  parallel: {timings['parallel']:7.2f}s "
          f"({count / timings['parallel']:6.2f} programs/sec)")
    print(f"  speedup:  {speedup:.2f}x")

    # Enforce the speedup floor only where it is meaningful: enough
    # cores, a pool large enough to amortize spawn cost, and not
    # explicitly waived for noisy shared runners (REPRO_BENCH_STRICT=0).
    strict = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"
    if strict and CPUS >= 4 and count >= 50:
        assert speedup >= 1.5, \
            f"sharded campaign too slow on {CPUS} cores: {speedup:.2f}x"
