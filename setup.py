from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro-bisect=repro.bisect.cli:main",
            "repro-campaign=repro.pipeline.cli:main",
            "repro-db=repro.store.cli:main",
            "repro-reduce=repro.reduce.cli:main",
            "repro-report=repro.report.cli:main",
            "repro-serve=repro.serve.cli:main",
            "repro-verify=repro.staticcheck.cli:main",
        ],
    },
)
