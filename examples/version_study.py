#!/usr/bin/env python3
"""The quantitative study and regression analysis (Sections 2 and 5.4).

Measures line coverage and availability-of-variables for several gcc-like
releases against their -O0 baselines (the Figure 1 panels), then shows the
effect of the cleanup-CFG patch (bug 105158): the ``patched`` compiler
recovers Conjecture 1 violations and availability at -O1.
"""

from repro import Compiler, GdbLike, run_campaign_on_programs, run_study
from repro.conjectures import C1, C2, C3
from repro.fuzz import generate_validated

POOL = 12
VERSIONS = ("4", "8", "trunk", "patched")
LEVELS = ("Og", "O1", "O2", "O3")


def main():
    print(f"generating {POOL} programs...")
    pool = [generate_validated(seed) for seed in range(POOL)]

    print("running the Figure-1 style study (this compiles "
          f"{len(VERSIONS) * (len(LEVELS) + 1) * POOL} executables)...")
    study = run_study(pool, "gcc", VERSIONS, LEVELS, GdbLike())
    for metric in ("line_coverage", "availability", "product"):
        print(f"\n--- {metric} (gcc) ---")
        print(study.format_table(metric))

    print("\n--- unique conjecture violations per version ---")
    print(f"{'version':>8}  {'C1':>4} {'C2':>4} {'C3':>4}")
    for version in VERSIONS:
        result = run_campaign_on_programs(
            pool, Compiler("gcc", version), GdbLike())
        print(f"{version:>8}  {result.unique_count(C1):>4} "
              f"{result.unique_count(C2):>4} "
              f"{result.unique_count(C3):>4}")
    print("\nThe 'patched' row carries the fix for gcc bug 105158 "
          "(cleanup_tree_cfg). On larger pools Conjecture 1 drops "
          "sharply, as in Section 5.4 of the paper — run "
          "benchmarks/test_table4_regression.py for that experiment.")


if __name__ == "__main__":
    main()
