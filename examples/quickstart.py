#!/usr/bin/env python3
"""Quickstart: compile the paper's introduction example and watch the
variable go missing.

The program is the confirmed gcc bug 105161's test case (Section 1 of the
paper): because ``k`` is zero, ``(j) * k`` constant-folds to zero and the
optimizer no longer needs ``j`` — but complete debug information could
still describe it (``DW_AT_const_value``). With the injected defect the
debugger shows ``j`` as lost at the array-access line; a defect-free
build of the same compiler keeps it available.
"""

from repro import Compiler, GdbLike, SourceFacts, check_all, parse, print_program
from repro.bugs import Defect

SOURCE = """
int b[10][2];
int a;
int main(void) {
    int i = 0, j, k;
    for (; i < 10; i++) {
        j = k = 0;
        for (; k < 1; k++)
            a = b[i][j * k];
    }
    return a;
}
"""


def show(title, trace, line, names=("i", "j", "k")):
    print(f"\n== {title} (stepping line {line}) ==")
    visit = trace.visit_for_line(line)
    if visit is None:
        print("  line not steppable")
        return
    for name in names:
        status = visit.status_of(name)
        value = visit.value_of(name)
        shown = f"{status} ({value})" if status == "available" else status
        print(f"  {name}: {shown}")


def main():
    program = parse(SOURCE)
    source = print_program(program)
    print(source)
    facts = SourceFacts(program)
    access_line = next(s.line for s in facts.global_store_sites)

    # A correct compiler: every variable stays available.
    clean = Compiler("gcc", "trunk")
    clean.defects = []
    trace = GdbLike().trace(clean.compile(program, "O1").exe)
    show("defect-free gcc -O1", trace, access_line)
    assert not check_all(facts, trace)

    # The same compiler with a bug-105161-style defect planted on j.
    buggy = Compiler("gcc", "trunk")
    buggy.defects = [Defect(
        defect_id="demo-105161", point="codegen.drop_die", family="gcc",
        pass_name="tree-ccp",
        selector=lambda ctx: ctx.get("symbol") == "j")]
    compilation = buggy.compile(program, "O1")
    trace = GdbLike().trace(compilation.exe)
    show("gcc -O1 with the 105161-style defect", trace, access_line)

    print("\nConjecture violations found:")
    for violation in check_all(facts, trace):
        print(f"  {violation}")


if __name__ == "__main__":
    main()
