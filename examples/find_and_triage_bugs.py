#!/usr/bin/env python3
"""Full testing-campaign walkthrough (Sections 4 and 5 of the paper).

Generates Csmith-style programs, checks the three conjectures against the
trunk gcc-like compiler at every optimization level in the gdb-like
debugger, then for the first violations found:

1. cross-validates in the other debugger and classifies the DWARF data
   (Missing / Hollow / Incomplete / Incorrect DIE, Section 5.3);
2. identifies the culprit optimization with the gcc-style per-flag search
   (Section 4.3);
3. reduces the test program with the culprit-preserving reducer
   (Section 4.4).
"""

from repro import (
    Compiler, GdbLike, Reducer, SourceFacts, check_all, classify_violation,
    print_program, test_program, triage,
)
from repro.fuzz import generate_validated


def main():
    compiler = Compiler("gcc", "trunk")
    debugger = GdbLike()

    print("searching for conjecture violations...")
    found = None
    for seed in range(200):
        program = generate_validated(seed)
        per_level = test_program(program, compiler, debugger)
        for level, violations in per_level.items():
            if violations:
                found = (seed, program, level, violations[0])
                break
        if found:
            break
    assert found is not None, "no violations in 200 programs?"
    seed, program, level, violation = found
    print(f"\nseed {seed}, -{level}: {violation}")

    facts = SourceFacts(program)
    classified = classify_violation(program, compiler, level, violation,
                                    facts)
    print(f"suspected system: {classified.suspected_system}")
    print(f"DWARF analysis:   {classified.category} DIE")

    print("\ntriaging (gcc-style -fno-<flag> search)...")
    result = triage(compiler, program, level, debugger, violation, facts)
    print(f"flags tried: {result.tested}; culprit flags: "
          f"{result.culprit_flags or 'none (method failed)'}")

    culprit = result.culprit
    print(f"\nreducing the test case (preserving culprit {culprit!r})...")
    reducer = Reducer(compiler, level, debugger, violation,
                      culprit_flag=culprit, max_steps=300)
    reduction = reducer.reduce(program)
    print(f"statements: {reduction.original_size} -> "
          f"{reduction.reduced_size} "
          f"({reduction.reduction_ratio:.0%} smaller, "
          f"{reduction.steps_tried} candidates tried)")
    print("\nreduced reproducer:\n")
    print(print_program(reduction.program))


if __name__ == "__main__":
    main()
