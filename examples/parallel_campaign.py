#!/usr/bin/env python3
"""Run the paper's core campaign sharded across worker processes.

Demonstrates the campaign orchestration subsystem:

* ``run_campaign_parallel`` shards a seed range across ``multiprocessing``
  workers; each worker rebuilds the toolchain from picklable specs and
  the merged result is bit-identical to the serial driver;
* results are values: ``merge()`` combines shards, ``to_json`` /
  ``from_json`` round-trip the artifact for cross-run comparison.

The same campaign is also available from the shell::

    repro-campaign --family gcc --pool-size 40 --workers 4 \
        --output campaign-gcc.json
"""

import os
import tempfile
import time

from repro import (
    CampaignResult, Compiler, CompilerSpec, DebuggerSpec, GdbLike,
    run_campaign, run_campaign_parallel,
)
from repro.report import format_table1_text, format_venn_text

POOL = int(os.environ.get("POOL", "24"))
WORKERS = int(os.environ.get("WORKERS", str(min(4, os.cpu_count() or 1))))


def main():
    compiler = CompilerSpec(family="gcc", version="trunk")
    debugger = DebuggerSpec(name="gdb-like")

    started = time.perf_counter()
    result = run_campaign_parallel(compiler, debugger, pool_size=POOL,
                                   workers=WORKERS)
    elapsed = time.perf_counter() - started
    print(f"sharded campaign: {POOL} programs, {WORKERS} workers, "
          f"{elapsed:.2f}s ({POOL / elapsed:.2f} programs/sec)\n")
    print(format_table1_text(result))
    print("\nVenn regions (unique violations per exact level set):")
    print(format_venn_text(result))

    # The parallel result is bit-identical to the serial driver's.
    serial = run_campaign(Compiler("gcc", "trunk"), GdbLike(),
                          pool_size=POOL)
    assert result == serial, "serial and sharded campaigns must agree"

    # Artifacts round-trip exactly.
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as handle:
        handle.write(result.to_json(indent=2))
        path = handle.name
    with open(path, encoding="utf-8") as handle:
        restored = CampaignResult.from_json(handle.read())
    os.unlink(path)
    assert restored == result, "artifact must round-trip exactly"
    print(f"\nartifact round-trip OK ({len(result.to_json())} bytes)")


if __name__ == "__main__":
    main()
