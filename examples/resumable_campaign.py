#!/usr/bin/env python3
"""Run a campaign through the persistent store, then resume it.

Demonstrates the persistent-store subsystem (``repro.store``):

* ``run_campaign(..., store=...)`` records every evaluated
  ``(seed, cell)`` pair in one sqlite file; a second run over the same
  cell skips straight to the stored payloads — an interrupted campaign
  resumes where it stopped, a grown pool compiles only the new seeds;
* the resumed artifact is bit-identical to one uninterrupted run;
* ``repro-report`` renders tables straight from the store file, and
  ``repro-db export`` writes stored runs back out as JSON artifacts.

The same loop is available from the shell::

    repro-campaign --family gcc --pool-size 40 --store gcc.sqlite \
        --output campaign-gcc.json     # Ctrl-C it, re-run: it resumes
    repro-db list gcc.sqlite
    repro-report table1 gcc.sqlite
"""

import os
import tempfile
import time

from repro import Compiler, GdbLike, run_campaign
from repro.store import CampaignStore
from repro.report import format_table1_text, load_artifact_file

POOL = int(os.environ.get("POOL", "24"))
PARTIAL = max(1, POOL // 3)


def timed(label, func):
    started = time.perf_counter()
    result = func()
    print(f"{label}: {time.perf_counter() - started:.2f}s")
    return result


def main():
    compiler, debugger = Compiler("gcc", "trunk"), GdbLike()
    path = os.path.join(tempfile.mkdtemp(), "campaign.sqlite")

    with CampaignStore(path) as store:
        # First run "dies" after PARTIAL seeds...
        timed(f"partial run ({PARTIAL} programs)",
              lambda: run_campaign(compiler, debugger, pool_size=PARTIAL,
                                   store=store))

    # ...a fresh process re-opens the store and finishes the pool.
    with CampaignStore(path) as store:
        resumed = timed(
            f"resumed run ({POOL} programs)",
            lambda: run_campaign(compiler, debugger, pool_size=POOL,
                                 store=store))
        hits, misses = store.stats.hits, store.stats.misses
        print(f"resume reused {hits} stored seeds, "
              f"compiled {misses} new ones")
        assert misses == POOL - PARTIAL, "only new seeds may recompile"

    # Bit-identical to one uninterrupted storeless run.
    fresh = timed(f"fresh run ({POOL} programs)",
                  lambda: run_campaign(compiler, debugger, pool_size=POOL))
    assert resumed.to_json() == fresh.to_json(), \
        "resumed artifact must be bit-identical to a fresh run"
    print("resumed artifact is bit-identical to the fresh run\n")

    # The report layer reads the store file directly — zero recompiles.
    print(format_table1_text(load_artifact_file(path)))
    os.unlink(path)


if __name__ == "__main__":
    main()
