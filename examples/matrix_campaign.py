#!/usr/bin/env python3
"""Run the full evaluation matrix through the compile-once driver.

Demonstrates the matrix subsystem:

* ``run_matrix_campaign`` pushes every pool program through every
  (family x version x level x debugger) cell while paying the frontend
  — generate, validate, resolve, lower — **once per program**: cells
  mutate cheap clones of one shared IR lowering, and both debuggers
  observe one execution per compiled cell;
* every cell is bit-identical (``to_json()``) to the per-cell
  ``run_campaign`` it replaces, only ~2x faster over the 2-family grid;
* per-seed lowered-module fingerprints ride in the artifact, so sharded
  runs can prove their workers lowered the same IR.

The same matrix is also available from the shell::

    repro-campaign --families gcc,clang --pool-size 24 \
        --output matrix.json
"""

import os
import time

from repro import (
    Compiler, GdbLike, MatrixCampaignResult, run_campaign,
    run_matrix_campaign,
)

POOL = int(os.environ.get("POOL", "12"))


def main():
    started = time.perf_counter()
    matrix = run_matrix_campaign(pool_size=POOL,
                                 families=("gcc", "clang"))
    elapsed = time.perf_counter() - started
    print(f"matrix campaign: {POOL} programs, {len(matrix.cells)} "
          f"cells, {elapsed:.2f}s ({POOL / elapsed:.2f} programs/sec)\n")
    print(matrix.format_summary())

    # Any cell is exactly the per-cell campaign it replaces.
    per_cell = run_campaign(Compiler("gcc", "trunk"), GdbLike(),
                            pool_size=POOL)
    cell = matrix.cell("gcc", "trunk", "gdb-like")
    assert cell.to_json() == per_cell.to_json(), \
        "matrix cells must be bit-identical to per-cell campaigns"

    # Artifacts round-trip exactly, fingerprints included.
    loaded = MatrixCampaignResult.from_json(matrix.to_json())
    assert loaded.to_json() == matrix.to_json()
    print(f"\n{len(matrix.fingerprints)} frontend fingerprints, "
          f"4 cells, artifact round-trips exactly.")


if __name__ == "__main__":
    main()
