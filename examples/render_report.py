#!/usr/bin/env python3
"""End-to-end reporting demo: campaign -> JSON artifact -> HTML report.

Runs a small gcc campaign, stores it as a ``repro-campaign/1`` artifact,
then renders every paper deliverable the artifact can feed (Table 1,
Table 4, Venn regions, Figure 4, plus the catalog Table 3) as Markdown,
self-contained HTML, and CSV with a ``repro-report/1`` manifest — the
library-level equivalent of::

    repro-campaign --family gcc --pool-size 20 --output campaign.json
    repro-report all report/ --from campaign.json

Open ``report/table1.html`` in a browser afterwards; see
``docs/ARTIFACTS.md`` for the schemas involved.
"""

import json
import os

from repro import Compiler, GdbLike, load_artifact_file, run_campaign
from repro.report import render, render_all, table1

POOL = int(os.environ.get("POOL", "20"))
OUT_DIR = os.environ.get("OUT", "report")


def main():
    # 1. Run a small campaign (the artifact producer).
    result = run_campaign(Compiler("gcc", "trunk"), GdbLike(),
                          pool_size=POOL)
    artifact_path = os.path.join(OUT_DIR, "campaign.json")
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(artifact_path, "w", encoding="utf-8") as handle:
        handle.write(result.to_json(indent=2))
        handle.write("\n")
    print(f"campaign artifact: {artifact_path} "
          f"({result.pool_size} programs)")

    # 2. Reload it as any later consumer would (schema-sniffed).
    campaign = load_artifact_file(artifact_path)
    assert campaign == result

    # 3. Render everything it can feed, plus the manifest.
    manifest = render_all([campaign], OUT_DIR)
    for report in manifest["reports"]:
        print(f"  {report['path']:>12}  {report['bytes']:>6} bytes  "
              f"sha256 {report['sha256'][:12]}…")
    print(f"manifest: {OUT_DIR}/manifest.json "
          f"(schema {manifest['schema']})")

    # 4. The files are exactly the library renders — show Table 1.
    with open(os.path.join(OUT_DIR, "table1.md"),
              encoding="utf-8") as handle:
        stored = handle.read()
    assert stored == render(table1(campaign), "md") + "\n"
    print()
    print(stored)

    # 5. The manifest re-verifies its files.
    with open(os.path.join(OUT_DIR, "manifest.json"),
              encoding="utf-8") as handle:
        assert json.load(handle) == manifest
    print(f"open {OUT_DIR}/table1.html in a browser for the HTML "
          f"rendering")


if __name__ == "__main__":
    main()
