#!/usr/bin/env python3
"""End-to-end reduction demo: fuzz -> check -> triage -> fast reduce.

Finds the first conjecture violation in the fuzz stream, identifies the
culprit optimization, and shrinks the witness with the fast reduction
engine — printing the oracle's per-stage accounting so the compile-once
batching and verdict memo are visible.  Finally reduces every witness
of a small campaign through :func:`repro.pipeline.run_reduction_campaign`
and renders the ``repro-reduce/1`` summary table (what the
``repro-reduce`` console script does from a stored artifact).
"""

from repro import (
    Compiler, GdbLike, Reducer, print_program, run_campaign,
    run_reduction_campaign, test_program, triage,
)
from repro.fuzz import generate_validated
from repro.report import reduce_table, render


def main():
    compiler = Compiler("gcc", "trunk")
    debugger = GdbLike()

    print("searching for a conjecture violation...")
    found = None
    for seed in range(200):
        program = generate_validated(seed)
        for level, violations in test_program(program, compiler,
                                              debugger).items():
            if violations:
                found = (seed, program, level, violations[0])
                break
        if found:
            break
    assert found is not None, "no violations in 200 programs?"
    seed, program, level, violation = found
    print(f"seed {seed}, -{level}: {violation}")

    print("\ntriaging the culprit optimization...")
    culprit = triage(compiler, program, level, debugger,
                     violation).culprit
    print(f"culprit: {culprit!r}")

    print("\nreducing with the fast engine "
          f"(preserving culprit {culprit!r})...")
    reducer = Reducer(compiler, level, debugger, violation,
                      culprit_flag=culprit)
    result = reducer.reduce(program)
    print(f"statements: {result.original_size} -> {result.reduced_size} "
          f"({result.reduction_ratio:.0%} smaller, "
          f"{result.steps_tried} candidates, "
          f"{result.steps_accepted} accepted)")
    stats = reducer.oracle.stats
    print(f"oracle: {stats.compiles} compiles for {stats.queries} "
          f"candidates — {stats.frontend_rejects} frontend rejects, "
          f"{stats.ub_rejects} UB rejects, {stats.memo_hits} memo hits")
    print("\nreduced reproducer:\n")
    print(print_program(result.program))

    print("reducing every witness of a 10-program campaign...")
    campaign = run_campaign(compiler, debugger, pool_size=10)
    summary = run_reduction_campaign(campaign, limit=3)
    print(render(reduce_table(summary), "text"))


if __name__ == "__main__":
    main()
